"""Job and result model for the batch runner.

A *job* is one independent simulation cell: workload x policy x
threshold x migration latency x configuration x seed.  Every figure and
table in the paper is a grid of such cells, which is what makes the
evaluation embarrassingly parallel — no cell reads another cell's state.

Two properties the rest of the subsystem leans on:

- **identity** — :meth:`JobSpec.job_id` is a stable, human-readable
  string computed only from the fields that change the simulation's
  outcome.  It keys the checkpoint manifest, so a resumed batch can
  recognise completed cells across process boundaries and interpreter
  restarts;
- **portability** — a job serialises to a flat JSON payload
  (:meth:`JobSpec.to_payload`) that a worker process reconstructs
  without pickling any library object.  :func:`config_to_payload` /
  :func:`config_from_payload` round-trip a full
  :class:`~repro.sim.config.SimulatorConfig`, nested cache geometry
  included, so workers simulate *exactly* the configuration the parent
  described.

:func:`derive_seed` is the subsystem's only source of randomness
control: child seeds are drawn from a root seed plus the job's identity
through SHA-256, so any grid ordering, sharding, or worker count yields
the same per-cell seed — the foundation of the serial == parallel
determinism guarantee.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.errors import ConfigurationError
from repro.service.config import ServiceConfig
from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    MemorySystemConfig,
    ScaleProfile,
    SimulatorConfig,
)

#: Version tag written into checkpoint manifests; bump on incompatible
#: record-format changes so stale manifests fail loudly, not subtly.
MANIFEST_FORMAT_VERSION = 1


def derive_seed(root_seed: int, *components: Any) -> int:
    """Derive a child seed from a root seed and a stable identity.

    The derivation hashes ``root_seed`` together with the ``repr`` of
    every component through SHA-256 and keeps 63 bits, so it is (a)
    deterministic across processes and platforms, (b) independent of
    execution order, and (c) statistically uncorrelated between jobs —
    unlike ``root_seed + i`` schemes, whose low-entropy neighbours can
    correlate generator streams.
    """
    digest = hashlib.sha256(
        "|".join([repr(int(root_seed))] + [repr(c) for c in components]).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True)
class JobSpec:
    """One simulation cell of a batch grid.

    ``seed`` of ``None`` means "use the batch's root seed" — the mode
    grid sweeps use so every cell shares one baseline run, matching the
    paper's methodology (and this repo's calibrated numbers).  An
    explicit seed (e.g. from :func:`derive_seed`) gives the cell its own
    stream, which robustness-style trials want.  ``tag`` is a free-form
    label folded into the job id; it distinguishes cells that are
    numerically identical but semantically distinct (e.g. two migration
    design points that happen to share a latency, or trial indices).
    """

    workload: str
    policy: str = "HI"
    threshold: int = 100
    latency: int = 100
    seed: Optional[int] = None
    dynamic_n: bool = False
    tag: str = ""

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError("job migration latency must be >= 0")
        if any(sep in self.tag for sep in "/\n"):
            raise ConfigurationError("job tag must not contain '/' or newlines")

    def resolved(self, root_seed: int) -> "JobSpec":
        """The same job with a concrete seed (root seed if unset)."""
        if self.seed is not None:
            return self
        return dataclasses.replace(self, seed=root_seed)

    @property
    def job_id(self) -> str:
        """Stable identity string; requires a resolved (concrete) seed."""
        if self.seed is None:
            raise ConfigurationError(
                "job_id needs a concrete seed; call resolved(root_seed) first"
            )
        parts = [
            self.workload,
            self.policy,
            f"N{self.threshold}",
            f"L{self.latency}",
            f"s{self.seed}",
        ]
        if self.dynamic_n:
            parts.append("dyn")
        if self.tag:
            parts.append(self.tag)
        return "/".join(parts)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "workload": self.workload,
            "policy": self.policy,
            "threshold": self.threshold,
            "latency": self.latency,
            "seed": self.seed,
            "dynamic_n": self.dynamic_n,
            "tag": self.tag,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "JobSpec":
        return JobSpec(
            workload=payload["workload"],
            policy=payload["policy"],
            threshold=payload["threshold"],
            latency=payload["latency"],
            seed=payload["seed"],
            dynamic_n=payload.get("dynamic_n", False),
            tag=payload.get("tag", ""),
        )


# ----------------------------------------------------------------------
# configuration serialisation
# ----------------------------------------------------------------------

#: Scalar SimulatorConfig fields copied verbatim into the payload.
_CONFIG_SCALARS = (
    "num_user_cores",
    "threads_per_user_core",
    "os_core_contexts",
    "seed",
    "enable_branch_model",
    "enable_tlb",
    "enable_icache",
    "track_energy",
    "policy_priming_invocations",
    "include_window_traps",
    "engine",
)

#: Structured SimulatorConfig fields serialised as nested dataclass
#: dicts.  Together with ``_CONFIG_SCALARS`` this must cover *every*
#: config field — the F-rules in ``repro.lint`` enforce that a new
#: field cannot ship without an explicit fingerprint position here.
_CONFIG_STRUCTURED = (
    "profile",
    "core",
    "memory",
    "service",
)

#: Payload keys that select an implementation rather than an outcome.
#: ``engine`` picks between the scalar and batched memory engines, which
#: are bit-identical by contract (enforced by the golden and property
#: suites), so it is excluded from fingerprints: baseline caches and
#: checkpoints stay valid across engine switches, and manifests written
#: before the field existed keep resuming cleanly.
_NON_OUTCOME_KEYS = ("engine",)


def config_to_payload(config: SimulatorConfig) -> Dict[str, Any]:
    """Flatten a :class:`SimulatorConfig` into a JSON-safe dict.

    Every field is covered (profile, core, nested cache geometry,
    scalars), so ``config_from_payload(config_to_payload(c)) == c`` —
    the equality the worker relies on to reproduce parent-side numbers.
    """
    payload: Dict[str, Any] = {
        name: dataclasses.asdict(getattr(config, name))
        for name in _CONFIG_STRUCTURED
    }
    payload.update({name: getattr(config, name) for name in _CONFIG_SCALARS})
    return payload


def config_from_payload(payload: Dict[str, Any]) -> SimulatorConfig:
    """Inverse of :func:`config_to_payload`."""
    memory = dict(payload["memory"])
    for level in ("l1", "l1i", "l2"):
        memory[level] = CacheConfig(**memory[level])
    scalars = {
        name: payload[name] for name in _CONFIG_SCALARS if name in payload
    }
    # Payloads written before the service field existed reconstruct to
    # the closed-loop default, so old checkpoints keep resuming.
    service = (
        ServiceConfig(**payload["service"])
        if "service" in payload else ServiceConfig()
    )
    return SimulatorConfig(
        profile=ScaleProfile(**payload["profile"]),
        core=CoreConfig(**payload["core"]),
        memory=MemorySystemConfig(**memory),
        service=service,
        **scalars,
    )


def _outcome_payload(config: SimulatorConfig) -> Dict[str, Any]:
    """The configuration payload restricted to outcome-determining keys."""
    payload = config_to_payload(config)
    for key in _NON_OUTCOME_KEYS:
        payload.pop(key, None)
    return payload


def config_fingerprint(config: SimulatorConfig) -> str:
    """Short stable hash of a configuration (keys baseline cache files)."""
    blob = json.dumps(_outcome_payload(config), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def batch_fingerprint(job_ids: List[str], config: SimulatorConfig) -> str:
    """Identity of a whole batch: its cell set plus its configuration.

    Stored in the checkpoint header and re-checked on resume, so a
    manifest can never silently satisfy a *different* grid.
    """
    blob = json.dumps(
        {"jobs": sorted(job_ids), "config": _outcome_payload(config)},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------

STATUS_OK = "ok"
STATUS_FAILED = "failed"


@dataclass
class JobResult:
    """Outcome of one cell: measured metrics or a captured failure.

    ``metrics`` holds the simulation's JSON-safe measurements (the same
    quantities ``repro run --json`` reports); on failure it is empty and
    ``error``/``traceback`` carry the exception message and the worker's
    formatted traceback.  ``resumed`` marks results loaded from a
    checkpoint rather than executed in this batch.  ``cache_counters``
    holds the worker's per-cell trace/result cache deltas (empty when
    the batch ran without a cache directory).  ``profile`` is the
    cell's serialised span tree (see :mod:`repro.obs.spans`) when the
    batch ran with span profiling, else ``None``.
    """

    spec: JobSpec
    status: str
    metrics: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempts: int = 1
    duration_s: float = 0.0
    resumed: bool = False
    cache_counters: Dict[str, int] = field(default_factory=dict)
    profile: Optional[Dict[str, Any]] = None

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def normalized_throughput(self) -> float:
        """Shorthand for the metric every figure plots."""
        return self.metrics["normalized_throughput"]

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "kind": "result",
            "job_id": self.job_id,
            "spec": self.spec.to_payload(),
            "status": self.status,
            "metrics": self.metrics,
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "duration_s": self.duration_s,
            "cache_counters": self.cache_counters,
        }
        if self.profile is not None:
            record["profile"] = self.profile
        return record

    @staticmethod
    def from_record(record: Dict[str, Any], resumed: bool = False) -> "JobResult":
        return JobResult(
            spec=JobSpec.from_payload(record["spec"]),
            status=record["status"],
            metrics=record.get("metrics", {}),
            error=record.get("error"),
            traceback=record.get("traceback"),
            attempts=record.get("attempts", 1),
            # diagnostic wall-time, excluded from result identity.
            duration_s=record.get("duration_s", 0.0),  # simlint: ignore[N505]
            resumed=resumed,
            cache_counters=record.get("cache_counters", {}),
            profile=record.get("profile"),
        )


@dataclass
class BatchResult:
    """Everything a batch produced, in the caller's submission order."""

    results: List[JobResult]
    executed: int = 0
    skipped: int = 0
    retries: int = 0
    wall_s: float = 0.0

    def __post_init__(self) -> None:
        self._by_id: Dict[str, JobResult] = {
            result.job_id: result for result in self.results
        }

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[JobResult]:
        return iter(self.results)

    def get(self, spec_or_id: Union[JobSpec, str]) -> JobResult:
        """Look a cell up by :class:`JobSpec` (resolved) or job id."""
        key = spec_or_id if isinstance(spec_or_id, str) else spec_or_id.job_id
        return self._by_id[key]

    @property
    def completed(self) -> List[JobResult]:
        return [r for r in self.results if r.ok]

    @property
    def failures(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    def normalized(self, spec_or_id: Union[JobSpec, str]) -> float:
        return self.get(spec_or_id).normalized_throughput

    def raise_on_failures(self) -> None:
        """Turn recorded cell failures into one loud batch error."""
        from repro.errors import ReproError

        if not self.failures:
            return
        lines = [f"{r.job_id}: {r.error}" for r in self.failures[:5]]
        more = len(self.failures) - len(lines)
        if more > 0:
            lines.append(f"... and {more} more")
        raise ReproError(
            f"{len(self.failures)} of {len(self.results)} batch cells "
            "failed:\n  " + "\n  ".join(lines)
        )

    def merged_profile(self) -> Dict[str, Any]:
        """Deterministically merge every cell's span tree.

        Profiles merge in job-id order (not completion order), so a
        parallel batch and its serial re-run produce identical merged
        structure; see :func:`repro.obs.spans.merge_profiles`.
        """
        from repro.obs.spans import merge_profiles

        profiles = [
            result.profile
            for result in sorted(self.results, key=lambda r: r.job_id)
            if result.profile is not None
        ]
        merged: Dict[str, Any] = merge_profiles(profiles)
        return merged

    def summary(self) -> Dict[str, Any]:
        """JSON-ready batch summary (the `repro report` shape for batches)."""
        return {
            "jobs": len(self.results),
            "ok": len(self.completed),
            "failed": len(self.failures),
            "executed": self.executed,
            "resumed": self.skipped,
            "retries": self.retries,
            "wall_s": round(self.wall_s, 3),
            "failures": [
                {"job_id": r.job_id, "error": r.error, "attempts": r.attempts}
                for r in self.failures
            ],
        }
