"""repro.runner — parallel batch execution of simulation grids.

Every paper artifact is a grid of independent simulation cells; this
subsystem executes such grids fast and safely:

- :class:`JobSpec` / :class:`JobResult` / :class:`BatchResult` — the
  job model (one cell = workload x policy x threshold x latency x
  config x seed, identified by a stable ``job_id``);
- :func:`derive_seed` — deterministic per-job seed derivation from a
  single root seed (SHA-256 based, order- and worker-count-independent);
- :class:`BatchRunner` / :func:`run_batch` — the scheduler: serial
  reference path (``jobs=1``) or a sharded
  :class:`~concurrent.futures.ProcessPoolExecutor` pool, with per-job
  timeout/retry, captured-traceback failure records, and ``runner_*``
  metrics in a :class:`~repro.obs.metrics.MetricsRegistry`;
- :class:`CheckpointManifest` / :class:`BaselineStore` — the JSONL
  checkpoint manifest behind ``--resume`` and the process-safe on-disk
  baseline memo;
- :class:`CellUpdate` — the started/retried/finished transition object
  handed to the scheduler's progress callback;
- :class:`TelemetryWriter` / :class:`TelemetryReader` /
  :class:`SweepMonitor` — live sweep telemetry: worker heartbeats and
  lifecycle records on disk, folded into the stall-aware progress
  snapshot behind ``repro serve``.

See ``docs/parallelism.md`` for the architecture, checkpoint format,
and determinism guarantees.
"""

from repro.runner.baselines import BaselineStore
from repro.runner.checkpoint import CheckpointManifest
from repro.runner.jobspec import (
    BatchResult,
    JobResult,
    JobSpec,
    batch_fingerprint,
    config_fingerprint,
    config_from_payload,
    config_to_payload,
    derive_seed,
)
from repro.runner.scheduler import (
    STAGE_FINISHED,
    STAGE_RETRIED,
    STAGE_STARTED,
    BatchInterrupted,
    BatchRunner,
    CellUpdate,
    run_batch,
    shard_jobs,
)
from repro.runner.telemetry import (
    SweepMonitor,
    TelemetryReader,
    TelemetryWriter,
    read_grid_manifest,
    write_grid_manifest,
)
from repro.runner.worker import JobTimeout, execute_job

__all__ = [
    "BaselineStore",
    "BatchInterrupted",
    "BatchResult",
    "BatchRunner",
    "CellUpdate",
    "CheckpointManifest",
    "JobResult",
    "JobSpec",
    "JobTimeout",
    "STAGE_FINISHED",
    "STAGE_RETRIED",
    "STAGE_STARTED",
    "SweepMonitor",
    "TelemetryReader",
    "TelemetryWriter",
    "batch_fingerprint",
    "config_fingerprint",
    "config_from_payload",
    "config_to_payload",
    "derive_seed",
    "execute_job",
    "read_grid_manifest",
    "run_batch",
    "shard_jobs",
    "write_grid_manifest",
]
