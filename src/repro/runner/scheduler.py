"""Batch scheduler: shards a job grid across worker processes.

:class:`BatchRunner` turns a list of :class:`~repro.runner.jobspec.JobSpec`
cells into a :class:`~repro.runner.jobspec.BatchResult`:

- ``jobs=1`` executes in-process (no pool, no pickling) — the reference
  serial path;
- ``jobs>1`` shards the grid round-robin over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Shards amortise
  submission overhead; because every cell is independently seeded, the
  sharding, worker count, and completion order cannot change any cell's
  measurements, so both paths are bit-identical.

Fault tolerance is layered: the worker converts cell exceptions and
timeouts into ``failed`` records (the batch continues); the scheduler
converts a crashed *worker process* into failed records for its shard;
``retries=k`` re-executes failed cells up to ``k`` more times (in-process,
so a broken pool cannot block recovery) before their failure becomes
final.

With a ``checkpoint_dir``, every final cell outcome is appended to a
JSONL manifest as it lands, and ``resume=True`` skips cells the manifest
already records as measured — a killed batch finishes by re-running only
the missing cells.  Progress and failure counts flow into an optional
:class:`~repro.obs.metrics.MetricsRegistry` under ``runner_*`` names,
and an optional ``progress`` callback observes every final cell outcome
(raising from it aborts the batch cleanly, which is also how tests
interrupt a batch mid-grid).
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.cache.paths import baselines_dir
from repro.errors import ReproError
from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.runner.checkpoint import CheckpointManifest
from repro.runner.jobspec import (
    BatchResult,
    JobResult,
    JobSpec,
    batch_fingerprint,
    config_to_payload,
)
from repro.runner.worker import execute_job, execute_shard
from repro.sim.config import SimulatorConfig

logger = logging.getLogger(__name__)

ProgressCallback = Callable[[JobResult, int, int], None]

#: Shards per worker: enough slack that an uneven shard cannot idle the
#: pool for long, few enough that submission overhead stays negligible.
SHARDS_PER_WORKER = 4

#: Histogram bucket edges (seconds) for per-cell wall time.
_DURATION_BUCKETS = (0.05, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0)


class BatchInterrupted(ReproError):
    """Raised to abort a batch between cells (checkpoint stays valid)."""


def shard_jobs(items: Sequence, num_shards: int) -> List[List]:
    """Round-robin ``items`` into at most ``num_shards`` non-empty lists.

    Round-robin (rather than contiguous slicing) spreads a grid's
    expensive cells — which cluster by workload and threshold — across
    shards, evening out shard runtimes.
    """
    if num_shards < 1:
        raise ReproError("need at least one shard")
    count = min(num_shards, len(items))
    shards: List[List] = [[] for _ in range(count)]
    for index, item in enumerate(items):
        shards[index % count].append(item)
    return shards


class BatchRunner:
    """Executes job grids; see the module docstring."""

    def __init__(
        self,
        config: Optional[SimulatorConfig] = None,
        jobs: int = 1,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        baseline_dir: Optional[str] = None,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[ProgressCallback] = None,
        cache_dir: Optional[str] = None,
    ):
        if jobs < 1:
            raise ReproError("need at least one worker")
        if retries < 0:
            raise ReproError("retries must be >= 0")
        if resume and checkpoint_dir is None:
            raise ReproError("resume requires a checkpoint directory")
        self.config = config or SimulatorConfig()
        self.jobs = jobs
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.cache_dir = cache_dir
        # Baseline precedence: an explicit directory wins; otherwise a
        # cache root shares its baselines/ section across every batch
        # (so fig4 and fig5 stop recomputing each other's baselines);
        # otherwise run() falls back to the checkpoint manifest's
        # baseline directory, and without any of those the per-process
        # memo alone carries the batch.
        if baseline_dir is None and cache_dir is not None:
            baseline_dir = baselines_dir(cache_dir)
        self.baseline_dir = baseline_dir
        self.timeout_s = timeout_s
        self.retries = retries
        self.metrics = metrics
        self.progress = progress

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> BatchResult:
        started = time.perf_counter()
        resolved = [spec.resolved(self.config.seed) for spec in specs]
        job_ids = [spec.job_id for spec in resolved]
        self._check_unique(job_ids)
        fingerprint = batch_fingerprint(job_ids, self.config)

        manifest: Optional[CheckpointManifest] = None
        completed: Dict[str, JobResult] = {}
        if self.checkpoint_dir is not None:
            manifest = CheckpointManifest(self.checkpoint_dir)
            if self.baseline_dir is None:
                self.baseline_dir = manifest.baselines_dir
            if self.resume:
                completed = manifest.load_completed(fingerprint, job_ids)
            manifest.open_for_append(
                {
                    "batch_fingerprint": fingerprint,
                    "root_seed": self.config.seed,
                    "profile": self.config.profile.name,
                    "jobs": len(job_ids),
                },
                fresh=not self.resume,
            )

        instruments = self._instruments()
        if instruments:
            instruments["total"].inc(len(resolved))
            instruments["skipped"].inc(len(completed))
            instruments["workers"].set(self.jobs)

        pending = [spec for spec in resolved if spec.job_id not in completed]
        payload_by_id = {
            spec.job_id: self._payload(spec) for spec in pending
        }
        results: Dict[str, JobResult] = dict(completed)
        retry_count = 0
        if completed:
            logger.info(
                "resuming batch: %d of %d cells already checkpointed",
                len(completed), len(resolved),
            )

        try:
            attempts: Dict[str, int] = {job_id: 0 for job_id in payload_by_id}
            queue = [payload_by_id[spec.job_id] for spec in pending]
            first_wave = True
            while queue:
                retry_queue: List[Dict[str, Any]] = []
                # Retry waves run in-process: they are small, and a pool
                # broken by a crashed worker must not block recovery.
                parallel = first_wave and self.jobs > 1
                for record in self._execute(queue, parallel):
                    job_id = record["job_id"]
                    attempts[job_id] += 1
                    record["attempts"] = attempts[job_id]
                    if record["status"] != "ok" and attempts[job_id] <= self.retries:
                        retry_count += 1
                        if instruments:
                            instruments["retries"].inc()
                        logger.warning(
                            "cell %s failed (attempt %d), retrying: %s",
                            job_id, attempts[job_id], record["error"],
                        )
                        retry_queue.append(payload_by_id[job_id])
                        continue
                    result = JobResult.from_record(record)
                    results[job_id] = result
                    self._record(result, manifest, instruments)
                    if self.progress is not None:
                        done = len(results) - len(completed)
                        self.progress(result, done, len(pending))
                queue = retry_queue
                first_wave = False
        finally:
            if manifest is not None:
                manifest.close()

        batch = BatchResult(
            results=[results[job_id] for job_id in job_ids],
            executed=len(results) - len(completed),
            skipped=len(completed),
            retries=retry_count,
            wall_s=time.perf_counter() - started,
        )
        logger.info(
            "batch done: %d cells (%d executed, %d resumed, %d failed) "
            "in %.2fs with %d worker(s)",
            len(batch), batch.executed, batch.skipped, len(batch.failures),
            batch.wall_s, self.jobs,
        )
        return batch

    # ------------------------------------------------------------------

    def _execute(
        self, payloads: List[Dict[str, Any]], parallel: bool
    ) -> Iterator[Dict[str, Any]]:
        """Yield one final record per payload, as they complete."""
        if not parallel or len(payloads) == 1:
            for payload in payloads:
                yield execute_job(payload)
            return
        shards = shard_jobs(payloads, self.jobs * SHARDS_PER_WORKER)
        with ProcessPoolExecutor(max_workers=self.jobs) as executor:
            futures = {
                executor.submit(execute_shard, shard): shard for shard in shards
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    shard = futures[future]
                    try:
                        records = future.result()
                    except Exception as error:
                        # The worker process itself died (or the pool
                        # broke); the shard's cells become failures.
                        logger.error("worker shard crashed: %s", error)
                        records = [
                            self._crash_record(payload, error)
                            for payload in shard
                        ]
                    for record in records:
                        yield record

    @staticmethod
    def _crash_record(payload: Dict[str, Any], error: Exception) -> Dict[str, Any]:
        return {
            "kind": "result",
            "job_id": payload["job"]["job_id"],
            "spec": payload["job"],
            "status": "failed",
            "metrics": {},
            "error": f"worker process crashed: {type(error).__name__}: {error}",
            "traceback": None,
            "attempts": 1,
            "duration_s": 0.0,
        }

    def _payload(self, spec: JobSpec) -> Dict[str, Any]:
        return {
            "job": spec.to_payload(),
            "config": config_to_payload(self.config),
            "baseline_dir": self.baseline_dir,
            "timeout_s": self.timeout_s,
            "cache_dir": self.cache_dir,
        }

    def _record(
        self,
        result: JobResult,
        manifest: Optional[CheckpointManifest],
        instruments: Dict[str, Any],
    ) -> None:
        if manifest is not None:
            manifest.append(result)
        if instruments:
            key = "completed" if result.ok else "failed"
            instruments[key].inc()
            instruments["duration"].observe(result.duration_s)
            for name, delta in result.cache_counters.items():
                instrument = instruments.get("cache_" + name)
                if instrument is not None and delta > 0:
                    instrument.inc(delta)
        if not result.ok:
            logger.warning("cell %s failed: %s", result.job_id, result.error)

    def _instruments(self) -> Dict[str, Any]:
        if self.metrics is None:
            return {}
        registry = self.metrics
        return {
            "total": registry.counter(
                names.RUNNER_JOBS_TOTAL,
                "cells submitted to the batch runner", exist_ok=True,
            ),
            "completed": registry.counter(
                names.RUNNER_JOBS_COMPLETED, "cells measured successfully",
                exist_ok=True,
            ),
            "failed": registry.counter(
                names.RUNNER_JOBS_FAILED, "cells whose failure became final",
                exist_ok=True,
            ),
            "skipped": registry.counter(
                names.RUNNER_JOBS_SKIPPED,
                "cells satisfied from a checkpoint", exist_ok=True,
            ),
            "retries": registry.counter(
                names.RUNNER_RETRIES_TOTAL,
                "cell re-executions after failure", exist_ok=True,
            ),
            "workers": registry.gauge(
                names.RUNNER_WORKERS,
                "worker processes of the current batch", exist_ok=True,
            ),
            "duration": registry.histogram(
                names.RUNNER_JOB_SECONDS, _DURATION_BUCKETS,
                "per-cell wall time", exist_ok=True,
            ),
            # Keys match the worker's cache_counters record entries
            # prefixed with "cache_".
            "cache_trace_hits": registry.counter(
                names.REPRO_CACHE_TRACE_HITS_TOTAL,
                "materialized traces replayed from the cache", exist_ok=True,
            ),
            "cache_trace_misses": registry.counter(
                names.REPRO_CACHE_TRACE_MISSES_TOTAL,
                "traces materialized on a cache miss", exist_ok=True,
            ),
            "cache_result_hits": registry.counter(
                names.REPRO_CACHE_RESULT_HITS_TOTAL,
                "cells satisfied from memoized results", exist_ok=True,
            ),
            "cache_result_misses": registry.counter(
                names.REPRO_CACHE_RESULT_MISSES_TOTAL,
                "cells simulated after a result-cache miss", exist_ok=True,
            ),
            "cache_bytes_read": registry.counter(
                names.REPRO_CACHE_READ_BYTES_TOTAL,
                "bytes read from cache entries", exist_ok=True,
            ),
            "cache_bytes_written": registry.counter(
                names.REPRO_CACHE_WRITTEN_BYTES_TOTAL,
                "bytes written into cache entries", exist_ok=True,
            ),
        }

    @staticmethod
    def _check_unique(job_ids: Iterable[str]) -> None:
        seen = set()
        for job_id in job_ids:
            if job_id in seen:
                raise ReproError(
                    f"duplicate cell in batch: {job_id!r} (use JobSpec.tag "
                    "to distinguish intentionally repeated cells)"
                )
            seen.add(job_id)


def run_batch(
    specs: Sequence[JobSpec],
    config: Optional[SimulatorConfig] = None,
    **kwargs,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchRunner`."""
    return BatchRunner(config=config, **kwargs).run(specs)
