"""Batch scheduler: shards a job grid across worker processes.

:class:`BatchRunner` turns a list of :class:`~repro.runner.jobspec.JobSpec`
cells into a :class:`~repro.runner.jobspec.BatchResult`:

- ``jobs=1`` executes in-process (no pool, no pickling) — the reference
  serial path;
- ``jobs>1`` shards the grid round-robin over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Shards amortise
  submission overhead; because every cell is independently seeded, the
  sharding, worker count, and completion order cannot change any cell's
  measurements, so both paths are bit-identical.

Fault tolerance is layered: the worker converts cell exceptions and
timeouts into ``failed`` records (the batch continues); the scheduler
converts a crashed *worker process* into failed records for its shard;
``retries=k`` re-executes failed cells up to ``k`` more times (in-process,
so a broken pool cannot block recovery) before their failure becomes
final.

With a ``checkpoint_dir``, every final cell outcome is appended to a
JSONL manifest as it lands, and ``resume=True`` skips cells the manifest
already records as measured — a killed batch finishes by re-running only
the missing cells.  Progress and failure counts flow into an optional
:class:`~repro.obs.metrics.MetricsRegistry` under ``runner_*`` names,
and an optional ``progress`` callback observes every cell *transition*
— started, retried, finished — as a :class:`CellUpdate` (raising from
it aborts the batch cleanly, which is also how tests interrupt a batch
mid-grid).  Every cell is guaranteed a ``started`` update before its
``finished`` update, with ``retried`` strictly between attempts.

With a ``telemetry_dir``, workers append heartbeat and lifecycle
records that the scheduler folds back in while waiting on the pool
(see :mod:`repro.runner.telemetry`): started transitions surface while
cells are still running, and an attached :class:`SweepMonitor` exposes
live progress, latency percentiles, and stall flags to ``repro serve``.
``span_profile=True`` makes every worker collect a per-cell span tree
(:mod:`repro.obs.spans`) that rides home on the result record.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.cache.paths import baselines_dir
from repro.errors import ReproError
from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import flatten_calls, flatten_self_times
from repro.runner.checkpoint import CheckpointManifest
from repro.runner.jobspec import (
    BatchResult,
    JobResult,
    JobSpec,
    batch_fingerprint,
    config_to_payload,
)
from repro.runner.telemetry import (
    SweepMonitor,
    TelemetryReader,
    write_grid_manifest,
)
from repro.runner.worker import execute_job, execute_shard
from repro.sim.config import SimulatorConfig

logger = logging.getLogger(__name__)

#: Cell lifecycle stages surfaced through the progress callback.
STAGE_STARTED = "started"
STAGE_RETRIED = "retried"
STAGE_FINISHED = "finished"


@dataclass(frozen=True)
class CellUpdate:
    """One cell lifecycle transition observed by the scheduler.

    ``result`` is populated only for ``finished`` updates; ``attempt``
    is the 1-based attempt the transition refers to (for ``retried``,
    the attempt that just failed).
    """

    stage: str
    job_id: str
    attempt: int = 1
    result: Optional[JobResult] = None

    @property
    def finished(self) -> bool:
        return self.stage == STAGE_FINISHED


ProgressCallback = Callable[[CellUpdate, int, int], None]

#: Pool-wait timeout (seconds) while a telemetry directory is attached:
#: the scheduler wakes this often to fold worker heartbeats in.
_TELEMETRY_POLL_S = 0.25

#: Shards per worker: enough slack that an uneven shard cannot idle the
#: pool for long, few enough that submission overhead stays negligible.
SHARDS_PER_WORKER = 4

#: Histogram bucket edges (seconds) for per-cell wall time.
_DURATION_BUCKETS = (0.05, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0)


class BatchInterrupted(ReproError):
    """Raised to abort a batch between cells (checkpoint stays valid)."""


def shard_jobs(items: Sequence, num_shards: int) -> List[List]:
    """Round-robin ``items`` into at most ``num_shards`` non-empty lists.

    Round-robin (rather than contiguous slicing) spreads a grid's
    expensive cells — which cluster by workload and threshold — across
    shards, evening out shard runtimes.
    """
    if num_shards < 1:
        raise ReproError("need at least one shard")
    count = min(num_shards, len(items))
    shards: List[List] = [[] for _ in range(count)]
    for index, item in enumerate(items):
        shards[index % count].append(item)
    return shards


class BatchRunner:
    """Executes job grids; see the module docstring."""

    def __init__(
        self,
        config: Optional[SimulatorConfig] = None,
        jobs: int = 1,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        baseline_dir: Optional[str] = None,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[ProgressCallback] = None,
        cache_dir: Optional[str] = None,
        monitor: Optional[SweepMonitor] = None,
        telemetry_dir: Optional[str] = None,
        span_profile: bool = False,
    ):
        if jobs < 1:
            raise ReproError("need at least one worker")
        if retries < 0:
            raise ReproError("retries must be >= 0")
        if resume and checkpoint_dir is None:
            raise ReproError("resume requires a checkpoint directory")
        self.config = config or SimulatorConfig()
        self.jobs = jobs
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.cache_dir = cache_dir
        # Baseline precedence: an explicit directory wins; otherwise a
        # cache root shares its baselines/ section across every batch
        # (so fig4 and fig5 stop recomputing each other's baselines);
        # otherwise run() falls back to the checkpoint manifest's
        # baseline directory, and without any of those the per-process
        # memo alone carries the batch.
        if baseline_dir is None and cache_dir is not None:
            baseline_dir = baselines_dir(cache_dir)
        self.baseline_dir = baseline_dir
        self.timeout_s = timeout_s
        self.retries = retries
        self.metrics = metrics
        self.progress = progress
        self.monitor = monitor
        self.telemetry_dir = telemetry_dir
        self.span_profile = span_profile

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> BatchResult:
        started = time.perf_counter()
        resolved = [spec.resolved(self.config.seed) for spec in specs]
        job_ids = [spec.job_id for spec in resolved]
        self._check_unique(job_ids)
        fingerprint = batch_fingerprint(job_ids, self.config)

        manifest: Optional[CheckpointManifest] = None
        completed: Dict[str, JobResult] = {}
        if self.checkpoint_dir is not None:
            manifest = CheckpointManifest(self.checkpoint_dir)
            if self.baseline_dir is None:
                self.baseline_dir = manifest.baselines_dir
            if self.resume:
                completed = manifest.load_completed(fingerprint, job_ids)
            manifest.open_for_append(
                {
                    "batch_fingerprint": fingerprint,
                    "root_seed": self.config.seed,
                    "profile": self.config.profile.name,
                    "jobs": len(job_ids),
                },
                fresh=not self.resume,
            )

        instruments = self._instruments()
        if instruments:
            instruments["total"].inc(len(resolved))
            instruments["skipped"].inc(len(completed))
            instruments["workers"].set(self.jobs)

        pending = [spec for spec in resolved if spec.job_id not in completed]
        payload_by_id = {
            spec.job_id: self._payload(spec) for spec in pending
        }
        results: Dict[str, JobResult] = dict(completed)
        retry_count = 0
        if completed:
            logger.info(
                "resuming batch: %d of %d cells already checkpointed",
                len(completed), len(resolved),
            )

        monitor = self.monitor
        reader: Optional[TelemetryReader] = None
        if self.telemetry_dir is not None:
            write_grid_manifest(self.telemetry_dir, len(resolved))
            reader = TelemetryReader(self.telemetry_dir)
        if monitor is not None:
            monitor.begin(len(resolved), resumed=len(completed))

        attempts: Dict[str, int] = {job_id: 0 for job_id in payload_by_id}
        #: cells whose current attempt already got a ``started`` update
        started_seen: Set[str] = set()
        running: Set[str] = set()

        def refresh_gauges() -> None:
            if instruments:
                instruments["cells_running"].set(len(running))
                if monitor is not None:
                    instruments["cells_stalled"].set(
                        len(monitor.snapshot()["stalled"])
                    )

        def notify(update: CellUpdate) -> None:
            if self.progress is not None:
                done = len(results) - len(completed)
                self.progress(update, done, len(pending))

        def on_start(job_id: Optional[str]) -> None:
            # Guard against telemetry from a different batch sharing the
            # directory, and against duplicate started records.
            if job_id not in attempts or job_id in started_seen:
                return
            started_seen.add(job_id)
            running.add(job_id)
            if instruments:
                instruments["cell_started"].inc()
            if monitor is not None:
                monitor.on_started(job_id)
            refresh_gauges()
            notify(CellUpdate(STAGE_STARTED, job_id, attempts[job_id] + 1))

        def poll_telemetry() -> None:
            assert reader is not None
            for telemetry_record in reader.poll():
                kind = telemetry_record.get("kind")
                if kind == "cell_started":
                    on_start(telemetry_record.get("job_id"))
                elif kind == "heartbeat":
                    if instruments:
                        instruments["heartbeats"].inc()
                    if monitor is not None:
                        monitor.observe_heartbeat(
                            telemetry_record.get("job_id")
                        )
                # cell_finished records are liveness-only here: the pool
                # future's result record is the authoritative finish.
            refresh_gauges()

        try:
            queue = [payload_by_id[spec.job_id] for spec in pending]
            first_wave = True
            while queue:
                retry_queue: List[Dict[str, Any]] = []
                # Retry waves run in-process: they are small, and a pool
                # broken by a crashed worker must not block recovery.
                parallel = first_wave and self.jobs > 1
                records = self._execute(
                    queue, parallel, on_start,
                    poll_telemetry if reader is not None else None,
                )
                for record in records:
                    job_id = record["job_id"]
                    # Synthetic started for cells whose telemetry the
                    # scheduler never saw (no telemetry dir, or a crash
                    # before the record flushed): the started-before-
                    # finished ordering holds unconditionally.
                    on_start(job_id)
                    attempts[job_id] += 1
                    record["attempts"] = attempts[job_id]
                    if record["status"] != "ok" and attempts[job_id] <= self.retries:
                        retry_count += 1
                        if instruments:
                            instruments["retries"].inc()
                            instruments["cell_retried"].inc()
                        logger.warning(
                            "cell %s failed (attempt %d), retrying: %s",
                            job_id, attempts[job_id], record["error"],
                        )
                        retry_queue.append(payload_by_id[job_id])
                        # The retry is a fresh attempt: it gets its own
                        # started transition when it begins executing.
                        started_seen.discard(job_id)
                        running.discard(job_id)
                        if monitor is not None:
                            monitor.on_retried(job_id)
                        refresh_gauges()
                        notify(
                            CellUpdate(STAGE_RETRIED, job_id, attempts[job_id])
                        )
                        continue
                    result = JobResult.from_record(record)
                    results[job_id] = result
                    running.discard(job_id)
                    if monitor is not None:
                        monitor.on_finished(
                            job_id, result.ok, result.duration_s,
                            profile=result.profile,
                        )
                    self._record(result, manifest, instruments)
                    refresh_gauges()
                    notify(
                        CellUpdate(
                            STAGE_FINISHED, job_id, attempts[job_id], result
                        )
                    )
                queue = retry_queue
                first_wave = False
        finally:
            if manifest is not None:
                manifest.close()

        batch = BatchResult(
            results=[results[job_id] for job_id in job_ids],
            executed=len(results) - len(completed),
            skipped=len(completed),
            retries=retry_count,
            wall_s=time.perf_counter() - started,
        )
        logger.info(
            "batch done: %d cells (%d executed, %d resumed, %d failed) "
            "in %.2fs with %d worker(s)",
            len(batch), batch.executed, batch.skipped, len(batch.failures),
            batch.wall_s, self.jobs,
        )
        return batch

    # ------------------------------------------------------------------

    def _execute(
        self,
        payloads: List[Dict[str, Any]],
        parallel: bool,
        on_start: Optional[Callable[[str], None]] = None,
        poll: Optional[Callable[[], None]] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield one final record per payload, as they complete.

        ``on_start`` fires just before a cell begins executing (serial
        path); in the parallel path started transitions instead arrive
        through ``poll``, which drains the telemetry directory between
        pool waits — so the wait gains a short timeout to keep the
        live view fresh even while no shard is completing.
        """
        if not parallel or len(payloads) == 1:
            for payload in payloads:
                if on_start is not None:
                    on_start(payload["job"]["job_id"])
                yield execute_job(payload)
            return
        shards = shard_jobs(payloads, self.jobs * SHARDS_PER_WORKER)
        with ProcessPoolExecutor(max_workers=self.jobs) as executor:
            futures = {
                executor.submit(execute_shard, shard): shard for shard in shards
            }
            remaining = set(futures)
            timeout = _TELEMETRY_POLL_S if poll is not None else None
            while remaining:
                done, remaining = wait(
                    remaining, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if poll is not None:
                    poll()
                for future in done:
                    shard = futures[future]
                    try:
                        records = future.result()
                    except Exception as error:
                        # The worker process itself died (or the pool
                        # broke); the shard's cells become failures.
                        logger.error("worker shard crashed: %s", error)
                        records = [
                            self._crash_record(payload, error)
                            for payload in shard
                        ]
                    for record in records:
                        yield record

    @staticmethod
    def _crash_record(payload: Dict[str, Any], error: Exception) -> Dict[str, Any]:
        return {
            "kind": "result",
            "job_id": payload["job"]["job_id"],
            "spec": payload["job"],
            "status": "failed",
            "metrics": {},
            "error": f"worker process crashed: {type(error).__name__}: {error}",
            "traceback": None,
            "attempts": 1,
            "duration_s": 0.0,
        }

    def _payload(self, spec: JobSpec) -> Dict[str, Any]:
        return {
            "job": spec.to_payload(),
            "config": config_to_payload(self.config),
            "baseline_dir": self.baseline_dir,
            "timeout_s": self.timeout_s,
            "cache_dir": self.cache_dir,
            "span_profile": self.span_profile,
            "telemetry_dir": self.telemetry_dir,
        }

    def _record(
        self,
        result: JobResult,
        manifest: Optional[CheckpointManifest],
        instruments: Dict[str, Any],
    ) -> None:
        if manifest is not None:
            manifest.append(result)
        if instruments:
            key = "completed" if result.ok else "failed"
            instruments[key].inc()
            # wall-time telemetry, outside the deterministic contract
            instruments["duration"].observe(result.duration_s)  # simlint: ignore[N503]
            for name, delta in result.cache_counters.items():
                instrument = instruments.get("cache_" + name)
                if instrument is not None and delta > 0:
                    instrument.inc(delta)
        if result.profile is not None and self.metrics is not None:
            self._fold_span_metrics(result.profile)
        if not result.ok:
            logger.warning("cell %s failed: %s", result.job_id, result.error)

    def _fold_span_metrics(self, profile: Dict[str, Any]) -> None:
        """Fold one cell's span tree into the labelled span counters."""
        registry = self.metrics
        assert registry is not None
        calls = flatten_calls(profile)
        for span, self_ns in flatten_self_times(profile).items():
            span_calls = calls.get(span, 0)
            if not self_ns and not span_calls:
                continue  # the synthetic root container
            labels = {"span": span}
            registry.counter(
                names.REPRO_SPAN_SELF_SECONDS_TOTAL,
                "per-span self time across profiled cells",
                exist_ok=True, labels=labels,
            ).inc(self_ns / 1e9)
            registry.counter(
                names.REPRO_SPAN_CALLS_TOTAL,
                "per-span call count across profiled cells",
                exist_ok=True, labels=labels,
            ).inc(span_calls)

    def _instruments(self) -> Dict[str, Any]:
        if self.metrics is None:
            return {}
        registry = self.metrics
        return {
            "total": registry.counter(
                names.RUNNER_JOBS_TOTAL,
                "cells submitted to the batch runner", exist_ok=True,
            ),
            "completed": registry.counter(
                names.RUNNER_JOBS_COMPLETED, "cells measured successfully",
                exist_ok=True,
            ),
            "failed": registry.counter(
                names.RUNNER_JOBS_FAILED, "cells whose failure became final",
                exist_ok=True,
            ),
            "skipped": registry.counter(
                names.RUNNER_JOBS_SKIPPED,
                "cells satisfied from a checkpoint", exist_ok=True,
            ),
            "retries": registry.counter(
                names.RUNNER_RETRIES_TOTAL,
                "cell re-executions after failure", exist_ok=True,
            ),
            "cell_started": registry.counter(
                names.RUNNER_CELL_STARTED_TOTAL,
                "cell attempts that began executing", exist_ok=True,
            ),
            "cell_retried": registry.counter(
                names.RUNNER_CELL_RETRIED_TOTAL,
                "cell attempts requeued after a failure", exist_ok=True,
            ),
            "cells_running": registry.gauge(
                names.RUNNER_CELLS_RUNNING,
                "cells currently executing", exist_ok=True,
            ),
            "cells_stalled": registry.gauge(
                names.RUNNER_CELLS_STALLED,
                "running cells silent past the stall horizon",
                exist_ok=True,
            ),
            "heartbeats": registry.counter(
                names.RUNNER_HEARTBEATS_TOTAL,
                "worker heartbeat records observed", exist_ok=True,
            ),
            "workers": registry.gauge(
                names.RUNNER_WORKERS,
                "worker processes of the current batch", exist_ok=True,
            ),
            "duration": registry.histogram(
                names.RUNNER_JOB_SECONDS, _DURATION_BUCKETS,
                "per-cell wall time", exist_ok=True,
            ),
            # Keys match the worker's cache_counters record entries
            # prefixed with "cache_".
            "cache_trace_hits": registry.counter(
                names.REPRO_CACHE_TRACE_HITS_TOTAL,
                "materialized traces replayed from the cache", exist_ok=True,
            ),
            "cache_trace_misses": registry.counter(
                names.REPRO_CACHE_TRACE_MISSES_TOTAL,
                "traces materialized on a cache miss", exist_ok=True,
            ),
            "cache_result_hits": registry.counter(
                names.REPRO_CACHE_RESULT_HITS_TOTAL,
                "cells satisfied from memoized results", exist_ok=True,
            ),
            "cache_result_misses": registry.counter(
                names.REPRO_CACHE_RESULT_MISSES_TOTAL,
                "cells simulated after a result-cache miss", exist_ok=True,
            ),
            "cache_bytes_read": registry.counter(
                names.REPRO_CACHE_READ_BYTES_TOTAL,
                "bytes read from cache entries", exist_ok=True,
            ),
            "cache_bytes_written": registry.counter(
                names.REPRO_CACHE_WRITTEN_BYTES_TOTAL,
                "bytes written into cache entries", exist_ok=True,
            ),
        }

    @staticmethod
    def _check_unique(job_ids: Iterable[str]) -> None:
        seen = set()
        for job_id in job_ids:
            if job_id in seen:
                raise ReproError(
                    f"duplicate cell in batch: {job_id!r} (use JobSpec.tag "
                    "to distinguish intentionally repeated cells)"
                )
            seen.add(job_id)


def run_batch(
    specs: Sequence[JobSpec],
    config: Optional[SimulatorConfig] = None,
    **kwargs,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchRunner`."""
    return BatchRunner(config=config, **kwargs).run(specs)
