"""Live sweep telemetry: worker heartbeats and the sweep monitor.

Three cooperating pieces, connected only through JSONL files so they
work across process boundaries without any shared-memory machinery:

- :class:`TelemetryWriter` — worker-side.  Appends cell-lifecycle
  records (``worker_hello``/``cell_started``/``cell_finished``) to a
  per-process file under the batch's telemetry directory and runs a
  daemon heartbeat thread that proves the worker is alive (and names
  the cell it is chewing on) even when a cell runs for minutes;
- :class:`TelemetryReader` — scheduler-side.  Incrementally tails
  every ``worker-*.jsonl`` in the directory, returning only complete,
  newly appended records per poll;
- :class:`SweepMonitor` — the aggregation point behind ``/progress``.
  It folds scheduler transitions (started/retried/finished) and worker
  heartbeats into live counts, per-cell latency percentiles, and stall
  flags: a running cell silent for longer than
  ``max(stall_factor x expected, stall_floor_s)`` — where *expected*
  is the median duration of completed cells — is flagged stalled.

All timestamps are wall-clock (``time.time``): they cross process
boundaries and only feed liveness decisions, never simulated time.
The monitor is thread-safe — the HTTP server snapshots it from another
thread while the scheduler mutates it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, IO, List, Optional

from repro.obs.spans import merge_profiles

__all__ = [
    "TelemetryWriter",
    "TelemetryReader",
    "SweepMonitor",
    "GRID_MANIFEST",
    "HEARTBEAT_INTERVAL_S",
    "write_grid_manifest",
    "read_grid_manifest",
]

#: Name of the grid manifest the scheduler drops into the telemetry
#: directory so a standalone ``repro serve`` knows the batch's size.
GRID_MANIFEST = "grid.json"

#: Default worker heartbeat period (seconds).  Small enough that stall
#: detection reacts within a couple of multiples of a cell's expected
#: duration, large enough to be invisible in profiles.
HEARTBEAT_INTERVAL_S = 0.5


class TelemetryWriter:
    """Appends lifecycle/heartbeat records for one worker process."""

    def __init__(
        self,
        directory: str,
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
    ):
        os.makedirs(directory, exist_ok=True)
        #: PID the writer was created in; a forked child must not reuse
        #: the parent's writer (its heartbeat thread dies in the fork).
        self.pid = os.getpid()
        self._path = os.path.join(directory, f"worker-{self.pid}.jsonl")
        self._lock = threading.Lock()
        self._file: Optional[IO[str]] = open(self._path, "a", encoding="utf-8")
        self._current_job: Optional[str] = None
        self._interval = heartbeat_interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.write_record({"kind": "worker_hello"})

    def write_record(self, record: Dict[str, Any]) -> None:
        payload = dict(record)
        payload.setdefault("ts", time.time())
        payload.setdefault("pid", os.getpid())
        with self._lock:
            if self._file is None:
                return
            self._file.write(json.dumps(payload, sort_keys=True) + "\n")
            self._file.flush()

    # -- lifecycle -----------------------------------------------------

    def cell_started(self, job_id: str) -> None:
        self._current_job = job_id
        self.write_record({"kind": "cell_started", "job_id": job_id})

    def cell_finished(
        self,
        job_id: str,
        status: str,
        duration_s: float,
        profile: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._current_job = None
        record: Dict[str, Any] = {
            "kind": "cell_finished",
            "job_id": job_id,
            "status": status,
            "duration_s": duration_s,
        }
        if profile is not None:
            record["profile"] = profile
        self.write_record(record)

    # -- heartbeats ----------------------------------------------------

    def start_heartbeats(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._beat, name="repro-telemetry-heartbeat", daemon=True
        )
        self._thread.start()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            self.write_record({"kind": "heartbeat", "job_id": self._current_job})

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class TelemetryReader:
    """Incrementally tails every worker file in a telemetry directory."""

    def __init__(self, directory: str):
        self._directory = directory
        #: per-file byte offset of the first unread byte
        self._offsets: Dict[str, int] = {}

    def poll(self) -> List[Dict[str, Any]]:
        """Return records appended since the previous poll, oldest first."""
        records: List[Dict[str, Any]] = []
        try:
            entries = sorted(os.listdir(self._directory))
        except FileNotFoundError:
            return records
        for entry in entries:
            if not (entry.startswith("worker-") and entry.endswith(".jsonl")):
                continue
            path = os.path.join(self._directory, entry)
            offset = self._offsets.get(entry, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                continue
            if not chunk:
                continue
            # Only consume complete lines; a partially flushed record
            # stays buffered for the next poll.
            newline_at = chunk.rfind(b"\n")
            if newline_at < 0:
                continue
            complete = chunk[: newline_at + 1]
            self._offsets[entry] = offset + len(complete)
            for raw in complete.splitlines():
                line = raw.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line.decode("utf-8")))
                except ValueError:
                    continue  # torn write; skip the record, keep reading
        records.sort(key=lambda r: (r.get("ts", 0.0), r.get("pid", 0)))
        return records


def _percentile(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (empty -> 0)."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered))))
    return ordered[rank]


class SweepMonitor:
    """Aggregates a running batch into the ``/progress`` JSON shape.

    Fed by the scheduler (authoritative started/retried/finished
    transitions) and, when the batch runs with a telemetry directory,
    by worker heartbeats.  Thread-safe; ``snapshot()`` may be called
    from the HTTP server thread at any time.
    """

    def __init__(
        self,
        stall_floor_s: float = 5.0,
        stall_factor: float = 2.0,
        clock: Any = time.time,
    ):
        self._lock = threading.Lock()
        self._clock = clock
        self.stall_floor_s = stall_floor_s
        self.stall_factor = stall_factor
        self._started_at = float(clock())
        self._total = 0
        self._resumed = 0
        self._ok = 0
        self._failed = 0
        self._retries = 0
        self._heartbeats = 0
        #: job_id -> last liveness signal timestamp (start or heartbeat)
        self._running: Dict[str, float] = {}
        self._durations: List[float] = []
        self._profiles: List[Dict[str, Any]] = []

    # -- feeding -------------------------------------------------------

    def begin(self, total: int, resumed: int = 0) -> None:
        with self._lock:
            self._total = total
            self._resumed = resumed
            self._started_at = float(self._clock())

    def on_started(self, job_id: str) -> None:
        with self._lock:
            self._running[job_id] = float(self._clock())

    def on_retried(self, job_id: str) -> None:
        with self._lock:
            self._running.pop(job_id, None)
            self._retries += 1

    def on_finished(
        self,
        job_id: str,
        ok: bool,
        duration_s: float,
        profile: Optional[Dict[str, Any]] = None,
    ) -> None:
        with self._lock:
            self._running.pop(job_id, None)
            if ok:
                self._ok += 1
            else:
                self._failed += 1
            self._durations.append(float(duration_s))
            if profile is not None:
                self._profiles.append(profile)

    def observe_heartbeat(self, job_id: Optional[str]) -> None:
        with self._lock:
            self._heartbeats += 1
            if job_id is not None and job_id in self._running:
                self._running[job_id] = float(self._clock())

    def feed_record(self, record: Dict[str, Any]) -> None:
        """Fold one worker telemetry record in (standalone serve mode).

        Used when no scheduler feeds the monitor directly — e.g.
        ``repro serve --telemetry DIR`` watching a batch owned by
        another process; lifecycle records then become authoritative.
        """
        kind = record.get("kind")
        if kind == "cell_started":
            self.on_started(record["job_id"])
        elif kind == "cell_finished":
            self.on_finished(
                record["job_id"],
                record.get("status") == "ok",
                record.get("duration_s", 0.0),
                profile=record.get("profile"),
            )
        elif kind == "heartbeat":
            self.observe_heartbeat(record.get("job_id"))

    # -- reading -------------------------------------------------------

    def expected_cell_s(self) -> float:
        """Median duration of completed cells (0 before any finish)."""
        with self._lock:
            return self._expected_locked()

    def _expected_locked(self) -> float:
        if not self._durations:
            return 0.0
        ordered = sorted(self._durations)
        return _percentile(ordered, 0.5)

    def _stalled_locked(self, now: float) -> List[str]:
        expected = self._expected_locked()
        horizon = max(self.stall_factor * expected, self.stall_floor_s)
        return sorted(
            job_id
            for job_id, last_signal in self._running.items()
            if now - last_signal > horizon
        )

    def snapshot(self) -> Dict[str, Any]:
        """The live ``/progress`` payload (JSON-ready)."""
        with self._lock:
            now = float(self._clock())
            done = self._ok + self._failed
            ordered = sorted(self._durations)
            return {
                "total": self._total,
                "done": done,
                "ok": self._ok,
                "failed": self._failed,
                "running": len(self._running),
                "pending": max(
                    0, self._total - self._resumed - done - len(self._running)
                ),
                "resumed": self._resumed,
                "retries": self._retries,
                "heartbeats": self._heartbeats,
                "stalled": self._stalled_locked(now),
                "elapsed_s": round(now - self._started_at, 3),
                "expected_cell_s": round(self._expected_locked(), 6),
                "latency_s": {
                    "p50": round(_percentile(ordered, 0.50), 6),
                    "p90": round(_percentile(ordered, 0.90), 6),
                    "p99": round(_percentile(ordered, 0.99), 6),
                },
            }

    def merged_profile(self) -> Dict[str, Any]:
        """Deterministic merge of every collected cell profile."""
        with self._lock:
            profiles = list(self._profiles)
        return merge_profiles(profiles)


def write_grid_manifest(directory: str, total: int) -> None:
    """Record the batch size for standalone ``repro serve`` watchers."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, GRID_MANIFEST)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"total": total, "started_at": time.time()}, handle)


def read_grid_manifest(directory: str) -> Optional[Dict[str, Any]]:
    path = os.path.join(directory, GRID_MANIFEST)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
    except (OSError, ValueError):
        return None
    return loaded if isinstance(loaded, dict) else None
