"""Process-safe persistence of memoised baseline runs.

Every normalized number in the evaluation divides by the same
uni-processor baseline, so a naive parallel batch would re-simulate that
baseline once per worker process.  :class:`BaselineStore` shares the
memo across processes through the filesystem: one JSON file per
(workload, configuration) pair under the checkpoint directory, written
atomically (temp file + ``os.replace``) so concurrent workers can race
on the same key without torn reads.

Because baselines are pure functions of (workload spec, config, seed),
two workers that race simply compute the same value and the second
``os.replace`` is a no-op overwrite — no locking is needed for
correctness, only atomicity for readers.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from typing import Dict, Optional, Tuple

from repro.runner.jobspec import config_fingerprint
from repro.sim.config import SimulatorConfig

logger = logging.getLogger(__name__)


class BaselineStore:
    """Directory-backed map of (workload, config) -> baseline throughput."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._memo: Dict[Tuple[str, str], float] = {}

    def _path(self, workload: str, config: SimulatorConfig) -> str:
        name = f"baseline-{workload}-{config_fingerprint(config)}.json"
        return os.path.join(self.directory, name)

    def get(self, workload: str, config: SimulatorConfig) -> Optional[float]:
        key = (workload, config_fingerprint(config))
        if key in self._memo:
            return self._memo[key]
        try:
            with open(self._path(workload, config)) as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as error:
            # A half-written or corrupt entry is recomputed, not fatal.
            logger.warning("ignoring unreadable baseline entry: %s", error)
            return None
        value = float(record["throughput"])
        self._memo[key] = value
        return value

    def put(self, workload: str, config: SimulatorConfig, throughput: float) -> None:
        self._memo[(workload, config_fingerprint(config))] = throughput
        path = self._path(workload, config)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".baseline-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(
                    {
                        "workload": workload,
                        "seed": config.seed,
                        "profile": config.profile.name,
                        "throughput": throughput,
                    },
                    handle,
                )
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
