"""Worker-side execution of batch jobs.

This module is what actually runs inside pool processes, so it obeys
three rules the scheduler depends on:

- **plain-data boundary** — it receives JSON-safe payload dicts and
  returns JSON-safe result records; no library object crosses the
  process boundary, so pickling can never couple the scheduler to
  simulator internals;
- **no escaping exceptions** — every failure (bad workload name, model
  bug, timeout) is converted into a ``failed`` record carrying the
  message and formatted traceback.  A failed cell is data, not a dead
  worker, which is what keeps one bad cell from killing a batch;
- **deterministic output** — given the same payload, a worker returns
  the same measurements whether it runs in-process (``--jobs 1``), in a
  forked pool worker, or after a resume.  All seeding is in the payload.

Per-job timeouts use ``SIGALRM`` (via ``signal.setitimer``), which fires
in the worker's main thread — exactly where pool workers execute — and
is restored afterwards.  On platforms without ``SIGALRM`` the timeout
degrades to "no timeout" rather than failing.

Baseline runs are memoised per process (module-level, keyed by workload
and full config fingerprint — safe under ``fork``) and, when the batch
has a checkpoint directory, shared across processes through
:class:`~repro.runner.baselines.BaselineStore`.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.resultstore import ResultStore
from repro.cache.tracestore import TraceStore
from repro.errors import ReproError
from repro.obs import names
from repro.obs.spans import NULL_PROFILER, SpanProfiler
from repro.offload.migration import MigrationModel
from repro.runner.baselines import BaselineStore
from repro.runner.jobspec import (
    STATUS_FAILED,
    STATUS_OK,
    config_fingerprint,
    config_from_payload,
)
from repro.runner.telemetry import TelemetryWriter
from repro.service.config import ServiceConfig
from repro.sim.config import SimulatorConfig
from repro.sim.simulator import make_policy, simulate, simulate_baseline
from repro.workloads.presets import get_workload


class JobTimeout(ReproError):
    """A cell exceeded its per-job wall-clock budget."""


#: Per-process memo of baseline throughputs.  Keyed by the full config
#: fingerprint (which includes the seed), so entries inherited across a
#: ``fork`` or shared between tests can never be wrong, only warm.
_BASELINE_MEMO: Dict[Tuple[str, str], float] = {}

#: Per-process cache stores, keyed by cache root.  Keeping one
#: :class:`TraceStore` per root preserves its LRU across the jobs of a
#: shard, which is where the trace-reuse win comes from.
_STORES: Dict[str, Tuple[TraceStore, ResultStore]] = {}

#: Per-process telemetry writers keyed by directory; one file (and one
#: heartbeat thread) per worker process, safe under ``fork`` because
#: the key embeds the directory and the filename embeds the PID.
_TELEMETRY: Dict[str, TelemetryWriter] = {}


def _telemetry_writer(directory: Optional[str]) -> Optional[TelemetryWriter]:
    if not directory:
        return None
    writer = _TELEMETRY.get(directory)
    if writer is None or writer.pid != os.getpid():
        writer = TelemetryWriter(directory)
        writer.start_heartbeats()
        # per-process writer handle keyed by directory; no result state
        _TELEMETRY[directory] = writer  # simlint: ignore[W702]
    return writer


def _cache_stores(
    cache_dir: Optional[str],
) -> Tuple[Optional[TraceStore], Optional[ResultStore]]:
    if not cache_dir:
        return None, None
    stores = _STORES.get(cache_dir)
    if stores is None:
        stores = (TraceStore(cache_dir), ResultStore(cache_dir))
        # per-process handles keyed by cache_dir; value-transparent caches
        _STORES[cache_dir] = stores  # simlint: ignore[W702]
    return stores


def _cache_counter_snapshot(
    trace_store: Optional[TraceStore], result_store: Optional[ResultStore]
) -> Dict[str, int]:
    """Combined counter totals across both cache levels."""
    totals: Dict[str, int] = {}
    for store in (trace_store, result_store):
        if store is None:
            continue
        for name, value in store.counters.items():
            totals[name] = totals.get(name, 0) + value
    return totals


def _baseline_throughput(
    workload: str,
    config: SimulatorConfig,
    baseline_dir: Optional[str],
    trace_store: Optional[TraceStore] = None,
) -> float:
    key = (workload, config_fingerprint(config))
    store = BaselineStore(baseline_dir) if baseline_dir else None
    value = _BASELINE_MEMO.get(key)
    if value is not None:
        # Even on a memo hit, make sure the checkpoint directory gets a
        # copy — a later resume runs in a cold process.
        if store is not None and store.get(workload, config) is None:
            store.put(workload, config, value)
        return value
    if store is not None:
        stored = store.get(workload, config)
        if stored is not None:
            # memo keyed by the full config fingerprint: a hit is
            # bit-identical to a recompute
            _BASELINE_MEMO[key] = stored  # simlint: ignore[W702]
            return stored
    value = simulate_baseline(
        get_workload(workload), config, trace_store=trace_store
    ).throughput
    # same fingerprint-keyed memo as above
    _BASELINE_MEMO[key] = value  # simlint: ignore[W702]
    if store is not None:
        store.put(workload, config, value)
    return value


class _Alarm:
    """Arm SIGALRM for ``seconds``; restore the previous handler on exit."""

    def __init__(self, seconds: Optional[float]):
        self.seconds = seconds if seconds and seconds > 0 else None
        self.armed = self.seconds is not None and hasattr(signal, "SIGALRM")
        self._previous = None

    def __enter__(self) -> "_Alarm":
        if self.armed:
            def _raise(signum, frame):
                raise JobTimeout(f"job exceeded {self.seconds:g}s timeout")

            self._previous = signal.signal(signal.SIGALRM, _raise)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
        return self

    def __exit__(self, *exc) -> None:
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)


def _run_cell(job: Dict[str, Any], config: SimulatorConfig,
              baseline_dir: Optional[str],
              trace_store: Optional[TraceStore] = None,
              result_store: Optional[ResultStore] = None,
              profiler: SpanProfiler = NULL_PROFILER) -> Dict[str, float]:
    """Simulate one cell and measure it; raises on any model error."""
    if result_store is not None:
        with profiler.span(names.SPAN_CELL_RESULT_CACHE):
            cached = result_store.get(
                job["job_id"], config_fingerprint(config)
            )
        if cached is not None:
            # A level-2 hit skips the baseline too: the stored metrics
            # already carry the normalized numbers.
            return cached
    spec = get_workload(job["workload"])
    migration = MigrationModel(f"runner-{job['latency']}", job["latency"])
    # The baseline is deliberately NOT span-profiled internally: it is
    # memoised per process and per checkpoint directory, so its inner
    # phase spans would appear a scheduling-dependent number of times
    # and break the serial == parallel structure guarantee.  The
    # ``cell.baseline`` span itself fires exactly once per cell.
    # Baselines are always the paper's closed-loop uni-processor run:
    # open-loop knobs (arrival model, pool shape) must not change what a
    # cell's throughput is normalized against, and stripping them lets
    # every service-mode cell of one sweep share one baseline.
    baseline_config = config
    if config.service != ServiceConfig():
        baseline_config = dataclasses.replace(config, service=ServiceConfig())
    with profiler.span(names.SPAN_CELL_BASELINE):
        baseline = _baseline_throughput(
            job["workload"], baseline_config, baseline_dir,
            trace_store=trace_store,
        )
    with profiler.span(names.SPAN_CELL_POLICY):
        policy = make_policy(
            job["policy"], threshold=job["threshold"], migration=migration,
            spec=spec, config=config,
        )
        controller = None
        if job.get("dynamic_n"):
            from repro.core.threshold import DynamicThresholdController

            controller = DynamicThresholdController(config.profile)
    with profiler.span(names.SPAN_CELL_SIMULATE):
        run = simulate(
            spec, policy, migration, config, controller=controller,
            trace_store=trace_store, profiler=profiler,
        )
    stats = run.stats
    if baseline == 0:
        raise ReproError(f"baseline for {job['workload']} has zero throughput")
    metrics = {
        "normalized_throughput": stats.throughput / baseline,
        "throughput": stats.throughput,
        "baseline_throughput": baseline,
        "offloads": stats.offload.offloads,
        "os_entries": stats.offload.os_entries,
        "offloaded_instructions": stats.offload.offloaded_instructions,
        "os_core_busy_fraction": stats.os_core_time_fraction(),
        "mean_queue_delay": stats.offload.mean_queue_delay,
        "cache_to_cache_transfers": stats.coherence.cache_to_cache_transfers,
        "invalidations": stats.coherence.invalidations,
    }
    if run.latency is not None:
        latency = run.latency
        metrics.update({
            "requests": latency.requests,
            "admission_drops": latency.drops,
            "latency_p50_cycles": latency.p50,
            "latency_p99_cycles": latency.p99,
            "latency_p999_cycles": latency.p999,
            "latency_mean_cycles": latency.mean,
            "latency_max_cycles": latency.max,
            "service_queue_cycles": latency.queue_cycles,
            "service_migration_cycles": latency.migration_cycles,
            "service_execution_cycles": latency.execution_cycles,
        })
    if result_store is not None:
        with profiler.span(names.SPAN_CELL_RESULT_CACHE):
            result_store.put(
                job["job_id"], config_fingerprint(config), metrics
            )
    return metrics


def execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one job payload; always returns a result record."""
    job = payload["job"]
    started = time.perf_counter()
    record: Dict[str, Any] = {
        "kind": "result",
        "job_id": job["job_id"],
        "spec": job,
        "attempts": 1,
        "metrics": {},
        "error": None,
        "traceback": None,
        "cache_counters": {},
    }
    telemetry = _telemetry_writer(payload.get("telemetry_dir"))
    if telemetry is not None:
        telemetry.cell_started(job["job_id"])
    profiler: SpanProfiler = (
        SpanProfiler() if payload.get("span_profile") else NULL_PROFILER
    )
    trace_store, result_store = _cache_stores(payload.get("cache_dir"))
    before = _cache_counter_snapshot(trace_store, result_store)
    try:
        with profiler.span(names.SPAN_CELL):
            with profiler.span(names.SPAN_CELL_SETUP):
                config = config_from_payload(payload["config"])
                config = dataclasses.replace(config, seed=job["seed"])
            with _Alarm(payload.get("timeout_s")):
                record["metrics"] = _run_cell(
                    job, config, payload.get("baseline_dir"),
                    trace_store=trace_store, result_store=result_store,
                    profiler=profiler,
                )
        record["status"] = STATUS_OK
    except Exception as error:  # a failed cell must not kill the batch
        record["status"] = STATUS_FAILED
        record["error"] = f"{type(error).__name__}: {error}"
        record["traceback"] = traceback.format_exc()
    after = _cache_counter_snapshot(trace_store, result_store)
    record["cache_counters"] = {
        name: after[name] - before.get(name, 0)
        for name in after
        if after[name] != before.get(name, 0)
    }
    record["duration_s"] = round(time.perf_counter() - started, 6)
    if profiler.enabled:
        record["profile"] = profiler.to_dict()
    if telemetry is not None:
        telemetry.cell_finished(
            job["job_id"], record["status"], record["duration_s"],
            profile=record.get("profile"),
        )
    return record


def execute_shard(payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Execute a shard of job payloads sequentially in this process.

    Sharding amortises inter-process submission overhead; the per-job
    records are identical to per-job submission because every job is
    independently seeded.
    """
    return [execute_job(payload) for payload in payloads]
