"""Statistics collection for simulation runs.

Counters are intentionally plain integer attributes (not a dict of
counters) so that the hot simulation loop can bump them without hashing,
and so that typos fail loudly as ``AttributeError`` instead of silently
creating new keys.

Mutation discipline: batch engines may *fold* many scalar bumps into
one ``+= n`` (``Cache.record_batch``, ``Directory.record_cold_fills``,
``MainMemory.fetch_batch``, the vectorized miss kernel's energy
updates), but every fold must land on the same counter the scalar path
bumps — never a new shadow counter — so all engines remain
bit-comparable attribute by attribute.  The simlint P201 parity rule
checks the reachable-mutation *sets* of the scalar and batched entry
points statically; folding preserves the set, which is why grouped
commits pass while dropping a counter from one path fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit rate in [0, 1]; defined as 1.0 for an untouched cache.

        The untouched-cache convention keeps the dynamic-N controller's
        averaged L2 feedback metric well-defined early in a run.
        """
        if self.accesses == 0:
            return 1.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses)


@dataclass
class CoreStats:
    """Per-core cycle and instruction accounting.

    ``busy_cycles`` counts cycles the core spent executing or stalled on
    its own memory accesses; ``offload_wait_cycles`` counts cycles a user
    core spent blocked while its thread ran on the OS core (including
    migration and queuing); ``queue_cycles`` isolates the queuing component
    for the Section V.C scalability study.  ``idle_cycles`` counts cycles
    an open-loop core spent waiting for its next request to arrive
    (always zero in closed-loop runs).
    """

    instructions: int = 0
    busy_cycles: int = 0
    offload_wait_cycles: int = 0
    queue_cycles: int = 0
    decision_cycles: int = 0
    migration_cycles: int = 0
    idle_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return (
            self.busy_cycles + self.offload_wait_cycles
            + self.decision_cycles + self.idle_cycles
        )

    @property
    def ipc(self) -> float:
        """Instructions per cycle attributed to this core's thread."""
        if self.total_cycles == 0:
            return 0.0
        return self.instructions / self.total_cycles

    def reset(self) -> None:
        self.instructions = 0
        self.busy_cycles = 0
        self.offload_wait_cycles = 0
        self.queue_cycles = 0
        self.decision_cycles = 0
        self.migration_cycles = 0
        self.idle_cycles = 0


@dataclass
class CoherenceStats:
    """Directory / coherence event counters."""

    cache_to_cache_transfers: int = 0
    invalidations: int = 0
    directory_lookups: int = 0

    def reset(self) -> None:
        self.cache_to_cache_transfers = 0
        self.invalidations = 0
        self.directory_lookups = 0


@dataclass
class PredictorStats:
    """Run-length predictor accuracy accounting (Fig. 2 / Fig. 3 data).

    *exact* predictions match the actual run length; *close* predictions
    land within ±5 % (the paper's accuracy buckets: 73.6 % exact, +24.8 %
    within ±5 %).  ``binary_correct``/``binary_total`` track the derived
    off-load decision accuracy at the active threshold (Fig. 3).
    """

    predictions: int = 0
    exact: int = 0
    close: int = 0
    global_fallbacks: int = 0
    binary_correct: int = 0
    binary_total: int = 0

    @property
    def exact_rate(self) -> float:
        return self.exact / self.predictions if self.predictions else 0.0

    @property
    def close_rate(self) -> float:
        return self.close / self.predictions if self.predictions else 0.0

    @property
    def binary_accuracy(self) -> float:
        if self.binary_total == 0:
            return 1.0
        return self.binary_correct / self.binary_total

    def reset(self) -> None:
        self.predictions = 0
        self.exact = 0
        self.close = 0
        self.global_fallbacks = 0
        self.binary_correct = 0
        self.binary_total = 0


@dataclass
class OffloadStats:
    """Off-loading activity counters."""

    os_entries: int = 0
    offloads: int = 0
    os_instructions: int = 0
    offloaded_instructions: int = 0
    os_core_busy_cycles: int = 0
    queue_delay_total: int = 0
    queue_delay_events: int = 0
    admission_drops: int = 0

    @property
    def offload_rate(self) -> float:
        return self.offloads / self.os_entries if self.os_entries else 0.0

    @property
    def mean_queue_delay(self) -> float:
        if self.queue_delay_events == 0:
            return 0.0
        return self.queue_delay_total / self.queue_delay_events

    def reset(self) -> None:
        self.os_entries = 0
        self.offloads = 0
        self.os_instructions = 0
        self.offloaded_instructions = 0
        self.os_core_busy_cycles = 0
        self.queue_delay_total = 0
        self.queue_delay_events = 0
        self.admission_drops = 0


@dataclass
class EnergyStats:
    """Simple per-event energy accounting (paper's future-work hook).

    Energies are in arbitrary units per event; totals let examples compute
    relative energy-delay products between configurations.
    """

    l1_access_energy: float = 1.0
    l2_access_energy: float = 6.0
    dram_access_energy: float = 120.0
    core_cycle_energy: float = 0.4
    l1_accesses: int = 0
    l2_accesses: int = 0
    dram_accesses: int = 0
    core_cycles: int = 0

    @property
    def total(self) -> float:
        return (
            self.l1_accesses * self.l1_access_energy
            + self.l2_accesses * self.l2_access_energy
            + self.dram_accesses * self.dram_access_energy
            + self.core_cycles * self.core_cycle_energy
        )

    def reset(self) -> None:
        self.l1_accesses = 0
        self.l2_accesses = 0
        self.dram_accesses = 0
        self.core_cycles = 0


@dataclass
class SimulationStats:
    """Everything a single simulation run measured.

    ``cores`` holds one :class:`CoreStats` per user core, ``os_core`` the
    dedicated OS core (present even when no off-loading happened, with zero
    counters).  ``l1``/``l2`` are keyed by a core label such as ``"user0"``
    or ``"os"``.
    """

    cores: List[CoreStats] = field(default_factory=list)
    os_core: CoreStats = field(default_factory=CoreStats)
    l1: Dict[str, CacheStats] = field(default_factory=dict)
    l1i: Dict[str, CacheStats] = field(default_factory=dict)
    l2: Dict[str, CacheStats] = field(default_factory=dict)
    coherence: CoherenceStats = field(default_factory=CoherenceStats)
    predictor: PredictorStats = field(default_factory=PredictorStats)
    offload: OffloadStats = field(default_factory=OffloadStats)
    energy: EnergyStats = field(default_factory=EnergyStats)

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.cores) + self.os_core.instructions

    @property
    def wall_cycles(self) -> int:
        """Makespan of the run: the longest per-core timeline."""
        timelines = [c.total_cycles for c in self.cores]
        if not timelines:
            return self.os_core.total_cycles
        return max(timelines)

    @property
    def throughput(self) -> float:
        """Aggregate instructions per wall cycle (equals IPC single-thread)."""
        wall = self.wall_cycles
        if wall == 0:
            return 0.0
        return self.total_instructions / wall

    def mean_l2_hit_rate(self) -> float:
        """Average of per-cache L2 hit rates over caches that saw traffic.

        This is the feedback metric the paper's dynamic-N controller uses:
        "the L2 cache hit rate of both the OS and user processors,
        averaged together".
        """
        rates = [s.hit_rate for s in self.l2.values() if s.accesses > 0]
        if not rates:
            return 1.0
        return sum(rates) / len(rates)

    def os_core_time_fraction(self) -> float:
        """Fraction of wall time the OS core was busy (Table III metric)."""
        wall = self.wall_cycles
        if wall == 0:
            return 0.0
        return min(1.0, self.offload.os_core_busy_cycles / wall)

    def reset_counters(self) -> None:
        """Zero every counter in place (used at the end of warm-up).

        Cache, core and predictor *state* (contents, training) is
        untouched — only the measured counts restart, exactly like
        clearing performance counters after a warm-up region.
        """
        for core in self.cores:
            core.reset()
        self.os_core.reset()
        for group in (self.l1, self.l1i, self.l2):
            for cache_stats in group.values():
                cache_stats.reset()
        self.coherence.reset()
        self.predictor.reset()
        self.offload.reset()
        self.energy.reset()
