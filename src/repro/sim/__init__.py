"""Simulator top level: configuration, statistics, entry points.

The :mod:`repro.sim.simulator` symbols are loaded lazily (PEP 562): the
simulator imports the policy classes, which import :mod:`repro.cpu`
modules, which need :mod:`repro.sim.config` — importing everything
eagerly here would make that chain circular.
"""

from repro.sim.config import (
    DEFAULT_SCALE,
    FULL_SCALE,
    TEST_SCALE,
    CacheConfig,
    CoreConfig,
    MemorySystemConfig,
    ScaleProfile,
    SimulatorConfig,
    table2_parameters,
)
from repro.sim.stats import (
    CacheStats,
    CoherenceStats,
    CoreStats,
    EnergyStats,
    OffloadStats,
    PredictorStats,
    SimulationStats,
)

_LAZY_SIMULATOR_SYMBOLS = (
    "SimulationResult",
    "make_policy",
    "simulate",
    "simulate_baseline",
)


def __getattr__(name):
    if name in _LAZY_SIMULATOR_SYMBOLS:
        from repro.sim import simulator

        return getattr(simulator, name)
    if name == "validate_result":
        from repro.sim.validate import validate_result

        return validate_result
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CacheConfig",
    "CacheStats",
    "CoherenceStats",
    "CoreConfig",
    "CoreStats",
    "DEFAULT_SCALE",
    "EnergyStats",
    "FULL_SCALE",
    "MemorySystemConfig",
    "OffloadStats",
    "PredictorStats",
    "ScaleProfile",
    "SimulationResult",
    "SimulationStats",
    "SimulatorConfig",
    "TEST_SCALE",
    "make_policy",
    "simulate",
    "simulate_baseline",
    "table2_parameters",
    "validate_result",
]
