"""High-level simulation entry points.

:func:`simulate` runs one (workload, policy, migration, config)
combination and returns a :class:`SimulationResult`;
:func:`simulate_baseline` runs the paper's no-off-loading uni-processor
baseline for the same workload and seed, which every normalized number in
the evaluation divides by.  :func:`make_policy` builds any of the paper's
policies by name, including the off-line profiling step SI requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.instrumentation import InstrumentationCosts, OfflineProfile
from repro.core.policies import (
    AlwaysOffload,
    DynamicInstrumentation,
    HardwareInstrumentation,
    NeverOffload,
    OffloadPolicy,
    OracleOffload,
    StaticInstrumentation,
)
from repro.core.predictor import RunLengthPredictor
from repro.core.threshold import DynamicThresholdController
from repro.errors import ConfigurationError
from repro.obs.bus import TraceBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanProfiler
from repro.offload.engine import OffloadEngine
from repro.offload.migration import AGGRESSIVE, MigrationModel
from repro.service.arrivals import ArrivalSchedule
from repro.service.latency import LatencyStats
from repro.sim.config import SimulatorConfig
from repro.sim.stats import SimulationStats
from repro.workloads.base import WorkloadSpec


@dataclass
class SimulationResult:
    """Outcome of one simulation run plus identifying metadata.

    ``latency`` carries the open-loop request-latency statistics when
    the run used a service arrival model, ``None`` for closed-loop runs.
    """

    workload: str
    policy: str
    migration: MigrationModel
    config: SimulatorConfig
    stats: SimulationStats
    threshold_trace: List[Tuple[int, int]] = field(default_factory=list)
    latency: Optional[LatencyStats] = None

    @property
    def throughput(self) -> float:
        """Aggregate instructions per wall cycle."""
        return self.stats.throughput

    @property
    def ipc(self) -> float:
        """Alias for throughput; identical for single-threaded runs."""
        return self.stats.throughput

    def normalized_to(self, baseline: "SimulationResult") -> float:
        """Throughput relative to a baseline run (the paper's y-axes)."""
        if baseline.throughput == 0:
            raise ConfigurationError("baseline run has zero throughput")
        return self.throughput / baseline.throughput


def simulate(
    spec: WorkloadSpec,
    policy: OffloadPolicy,
    migration: MigrationModel = AGGRESSIVE,
    config: Optional[SimulatorConfig] = None,
    controller: Optional[DynamicThresholdController] = None,
    bus: Optional["TraceBus"] = None,
    metrics: Optional["MetricsRegistry"] = None,
    trace_store: Optional[Any] = None,
    profiler: Optional["SpanProfiler"] = None,
) -> SimulationResult:
    """Run one simulation; see the module docstring.

    ``bus`` (a :class:`repro.obs.TraceBus`) and ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) enable the observability layer;
    both default to off, which costs the hot loop one attribute check.
    ``trace_store`` (a :class:`repro.cache.TraceStore`) lets the engine
    replay materialized workload traces; replay is bit-identical to
    regeneration, so results do not depend on whether a store is given.
    ``profiler`` (a :class:`repro.obs.SpanProfiler`) attributes the
    run's wall-clock to simulation phases; like the bus, it defaults to
    a null object whose hot-loop cost is one attribute check, and it
    never feeds back into simulated time.
    """
    if config is None:
        config = SimulatorConfig()
    if config.threads_per_user_core > 1:
        from repro.offload.smt import SMTOffloadEngine

        engine = SMTOffloadEngine(
            spec, policy, migration, config, controller,
            bus=bus, metrics=metrics, trace_store=trace_store,
            profiler=profiler,
        )
    else:
        arrivals = (
            ArrivalSchedule(
                config.service, seed=config.seed,
                threads=config.num_user_cores,
            )
            if config.service.open_loop
            else None
        )
        engine = OffloadEngine(
            spec, policy, migration, config, controller,
            bus=bus, metrics=metrics, trace_store=trace_store,
            profiler=profiler, arrivals=arrivals,
        )
    stats = engine.run()
    return SimulationResult(
        workload=spec.name,
        policy=policy.name,
        migration=migration,
        config=config,
        stats=stats,
        threshold_trace=engine.threshold_trace,
        latency=engine.latency_snapshot(),
    )


def simulate_baseline(
    spec: WorkloadSpec,
    config: Optional[SimulatorConfig] = None,
    trace_store: Optional[Any] = None,
) -> SimulationResult:
    """The paper's baseline: the whole program on a single core."""
    return simulate(
        spec, NeverOffload(), migration=AGGRESSIVE, config=config,
        trace_store=trace_store,
    )


def make_policy(
    name: str,
    threshold: int = 1000,
    migration: MigrationModel = AGGRESSIVE,
    spec: Optional[WorkloadSpec] = None,
    config: Optional[SimulatorConfig] = None,
    costs: Optional[InstrumentationCosts] = None,
    predictor: Optional[RunLengthPredictor] = None,
) -> OffloadPolicy:
    """Construct one of the paper's policies by short name.

    ``"SI"`` requires ``spec`` (and optionally ``config``) because static
    instrumentation is built from an off-line profiling run of the
    workload; the profiling uses a seed distinct from evaluation runs.
    """
    key = name.upper()
    if key in ("BASELINE", "NEVER"):
        return NeverOffload()
    if key == "ALWAYS":
        return AlwaysOffload()
    if key == "ORACLE":
        return OracleOffload(threshold=threshold)
    if key == "DI":
        return DynamicInstrumentation(threshold=threshold, costs=costs)
    if key == "HI":
        return HardwareInstrumentation(
            threshold=threshold, predictor=predictor, costs=costs
        )
    if key == "SI":
        if spec is None:
            raise ConfigurationError("SI needs the workload spec for profiling")
        profile = (config or SimulatorConfig()).profile
        offline = OfflineProfile.collect(spec, profile)
        # The prior state of the art hand-instruments a handful of
        # typically-long-running routines (Section II); six matches the
        # sets Chakraborty/Mogul-style implementations describe.
        return StaticInstrumentation(
            offline, migration.one_way_latency, costs=costs, max_instrumented=6
        )
    raise ConfigurationError(
        f"unknown policy {name!r}; expected baseline/always/oracle/SI/DI/HI"
    )
