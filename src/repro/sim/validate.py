"""Post-run consistency validation.

A trace-driven simulator can silently drop cycles or instructions and
still produce plausible-looking throughput numbers.  This module checks
a finished :class:`~repro.sim.simulator.SimulationResult` against the
accounting identities the engine is supposed to maintain, raising
:class:`~repro.errors.SimulationError` with a precise message when one
fails.  The integration tests run every shape experiment through it;
users can call :func:`validate_result` on their own runs.

Checked identities:

1. **instruction conservation** — user-core + OS-core instructions cover
   the region of interest (each user core executed at least the scaled
   ROI; nothing was double-counted);
2. **cycle composition** — every core's total equals busy + off-load
   wait + decision cycles, and queue/migration components never exceed
   the wait that contains them;
3. **off-load accounting** — offloads ≤ OS entries, off-loaded
   instructions ≤ OS instructions, and the OS core executed exactly the
   off-loaded instructions;
4. **cache sanity** — hit + miss = accesses per cache (by construction
   of :class:`CacheStats`, re-checked against aggregate energy counters
   when energy tracking is on);
5. **predictor sanity** — exact + close ≤ predictions, binary_correct ≤
   binary_total;
6. **coherence sanity** — with a single active node there must be no
   cache-to-cache transfers or invalidations.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError
from repro.sim.simulator import SimulationResult


def validate_result(result: SimulationResult) -> List[str]:
    """Run all consistency checks; returns the list of check names run.

    Raises :class:`SimulationError` on the first violated identity.
    """
    checks = [
        _check_instruction_conservation,
        _check_cycle_composition,
        _check_offload_accounting,
        _check_cache_sanity,
        _check_predictor_sanity,
        _check_coherence_sanity,
    ]
    for check in checks:
        check(result)
    return [check.__name__.lstrip("_") for check in checks]


def _fail(message: str) -> None:
    raise SimulationError(f"result validation failed: {message}")


def _check_instruction_conservation(result: SimulationResult) -> None:
    stats = result.stats
    roi = result.config.profile.scaled_roi
    for index, core in enumerate(stats.cores):
        executed = core.instructions
        # Off-loaded OS instructions were executed remotely on this
        # core's behalf; per-core attribution is via the offload stats.
        if stats.offload.offloaded_instructions + executed < roi:
            _fail(
                f"user core {index} plus off-loaded work covers "
                f"{executed + stats.offload.offloaded_instructions} < ROI {roi}"
            )
    total = stats.total_instructions
    if total < roi:
        _fail(f"total instructions {total} below the ROI {roi}")
    if stats.os_core.instructions != stats.offload.offloaded_instructions:
        _fail(
            f"OS core executed {stats.os_core.instructions} instructions "
            f"but {stats.offload.offloaded_instructions} were off-loaded"
        )


def _check_cycle_composition(result: SimulationResult) -> None:
    for index, core in enumerate(result.stats.cores):
        recomposed = (
            core.busy_cycles + core.offload_wait_cycles + core.decision_cycles
        )
        if core.total_cycles != recomposed:
            _fail(f"core {index} cycle buckets do not sum to its total")
        if core.queue_cycles > core.offload_wait_cycles:
            _fail(f"core {index} queue cycles exceed its off-load wait")
        if core.migration_cycles > core.offload_wait_cycles:
            _fail(f"core {index} migration cycles exceed its off-load wait")
        if min(core.busy_cycles, core.offload_wait_cycles,
               core.decision_cycles) < 0:
            _fail(f"core {index} has a negative cycle bucket")


def _check_offload_accounting(result: SimulationResult) -> None:
    offload = result.stats.offload
    if offload.offloads > offload.os_entries:
        _fail(
            f"{offload.offloads} offloads exceed {offload.os_entries} entries"
        )
    if offload.offloaded_instructions > offload.os_instructions:
        _fail("off-loaded instructions exceed total OS instructions")
    if offload.queue_delay_events != offload.offloads:
        _fail(
            f"{offload.queue_delay_events} queue events for "
            f"{offload.offloads} offloads"
        )


def _check_cache_sanity(result: SimulationResult) -> None:
    stats = result.stats
    for group_name, group in (("l1", stats.l1), ("l1i", stats.l1i),
                              ("l2", stats.l2)):
        for label, cache in group.items():
            if cache.hits < 0 or cache.misses < 0:
                _fail(f"{group_name}[{label}] has negative counters")
    # L2 traffic is a subset of L1 traffic (L1 misses plus nothing else).
    l1_misses = sum(c.misses for c in stats.l1.values()) + sum(
        c.misses for c in stats.l1i.values()
    )
    l2_accesses = sum(c.accesses for c in stats.l2.values())
    if l2_accesses > l1_misses:
        _fail(
            f"L2 saw {l2_accesses} accesses but only {l1_misses} L1 misses "
            "occurred"
        )


def _check_predictor_sanity(result: SimulationResult) -> None:
    predictor = result.stats.predictor
    if predictor.exact + predictor.close > predictor.predictions:
        _fail("predictor accuracy buckets exceed prediction count")
    if predictor.binary_correct > predictor.binary_total:
        _fail("binary_correct exceeds binary_total")
    if predictor.global_fallbacks > predictor.predictions:
        _fail("fallback count exceeds prediction count")


def _check_coherence_sanity(result: SimulationResult) -> None:
    stats = result.stats
    coherence = stats.coherence
    if min(coherence.cache_to_cache_transfers, coherence.invalidations,
           coherence.directory_lookups) < 0:
        _fail("negative coherence counter")
    os_touched = stats.l2.get("os")
    single_node = (
        len(stats.cores) == 1
        and (os_touched is None or os_touched.accesses == 0)
    )
    if single_node and coherence.cache_to_cache_transfers > 0:
        _fail("cache-to-cache transfers recorded with one active node")
    if single_node and coherence.invalidations > 0:
        _fail("invalidations recorded with one active node")
