"""Simulator configuration: the paper's Table II parameters plus scaling.

The paper (Table II) models in-order UltraSPARC III cores at 3.5 GHz with:

==========================  =======================================
L1 I-cache                  32 KB / 2-way, 1-cycle
L1 D-cache                  32 KB / 2-way, 1-cycle
L2 cache                    1 MB / 16-way, dual banked, 12-cycle
Line size                   64 bytes
TLB                         128-entry fully associative
Coherence                   directory-based MESI
Main memory                 350-cycle uniform latency
==========================  =======================================

Those numbers are the defaults here.  Because the paper simulates hundreds
of millions of instructions on a native-code simulator and we run in
CPython, :class:`ScaleProfile` scales *instruction counts* (region of
interest, warm-up, controller epochs) and optionally cache capacities down
together, preserving the ratio of working-set size to cache size that the
paper's cache-interference effects depend on.  All headline results in the
paper are normalized (relative IPC / throughput), so proportional scaling
preserves the shapes being reproduced.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError
from repro.service.config import ServiceConfig

KB = 1024
MB = 1024 * 1024

#: Valid values for :attr:`SimulatorConfig.engine`.
ENGINE_MODES = frozenset({"scalar", "batched", "columnar"})


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level.

    ``hit_latency`` is the additional stall contributed by a hit at this
    level beyond the pipelined L1 access (the paper charges 1 cycle for L1
    hits, which we fold into the base CPI, and 12 cycles for L2 hits).
    """

    size_bytes: int
    associativity: int
    line_size: int = 64
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_size <= 0:
            raise ConfigurationError(
                f"cache dimensions must be positive, got {self}"
            )
        if self.size_bytes % (self.line_size * self.associativity) != 0:
            raise ConfigurationError(
                "cache size must be a multiple of line_size * associativity: "
                f"{self.size_bytes} % {self.line_size * self.associativity} != 0"
            )
        if self.hit_latency < 0:
            raise ConfigurationError("hit_latency must be non-negative")

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class MemorySystemConfig:
    """The full memory-system parameter set from Table II.

    Coherence latencies break out the directory lookup, cache-to-cache
    transfer, and invalidation costs, which the paper states are modelled
    independently.
    """

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * KB, 2, hit_latency=0)
    )
    #: The separate L1 instruction cache of Table II (32 KB / 2-way).
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * KB, 2, hit_latency=0)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1 * MB, 16, hit_latency=12)
    )
    dram_latency: int = 350
    directory_latency: int = 20
    cache_to_cache_latency: int = 30
    invalidation_latency: int = 12
    line_size: int = 64

    def __post_init__(self) -> None:
        for name in (
            "dram_latency",
            "directory_latency",
            "cache_to_cache_latency",
            "invalidation_latency",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.l1.line_size != self.line_size or self.l2.line_size != self.line_size:
            raise ConfigurationError("L1/L2 line sizes must match line_size")
        if self.l1i.line_size != self.line_size:
            raise ConfigurationError("L1I line size must match line_size")
        if self.l1.size_bytes > self.l2.size_bytes:
            raise ConfigurationError("L1 must not be larger than L2")
        if self.l1i.size_bytes > self.l2.size_bytes:
            raise ConfigurationError("L1I must not be larger than L2")


@dataclass(frozen=True)
class CoreConfig:
    """In-order core parameters.

    ``base_cpi`` is the no-stall cycles-per-instruction (1.0 for the
    paper's in-order pipeline).  ``memory_ratio`` is the fraction of
    instructions that reference data memory; it is a property of the
    workload stream but carries a sane default for tests.
    """

    frequency_ghz: float = 3.5
    base_cpi: float = 1.0
    tlb_entries: int = 128

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.base_cpi < 1.0:
            raise ConfigurationError("in-order base CPI cannot be below 1.0")
        if self.tlb_entries <= 0:
            raise ConfigurationError("TLB must have at least one entry")


@dataclass(frozen=True)
class ScaleProfile:
    """Scales the paper's instruction-count parameters to CPython speeds.

    ``scale`` divides every instruction-count quantity: the paper's 50 M
    warm-up, 25 M sampling epochs, and 100 M stable-run epochs.  A scale of
    1 reproduces the paper's literal counts; the default profiles divide by
    1,000 so a full design-space sweep runs in seconds.

    ``cache_scale`` divides the L2 capacity and the workload working-set
    sizes together, preserving the pressure ratio that the paper's
    cache-interference effects depend on.  ``l1_scale`` (0 = use
    ``cache_scale``) divides the L1s separately: the L1 must stay large
    enough relative to a *single hot set* to keep its filtering role, so
    the default profiles shrink it much less than the L2.
    """

    name: str = "default"
    scale: int = 1000
    cache_scale: int = 32
    l1_scale: int = 0
    region_of_interest: int = 200_000_000
    warmup_instructions: int = 50_000_000

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.cache_scale <= 0 or self.l1_scale < 0:
            raise ConfigurationError("scale factors must be positive")
        if self.region_of_interest <= 0 or self.warmup_instructions < 0:
            raise ConfigurationError("instruction counts must be positive")

    @property
    def effective_l1_scale(self) -> int:
        return self.l1_scale if self.l1_scale else self.cache_scale

    @property
    def scaled_roi(self) -> int:
        """Region-of-interest instruction count after scaling."""
        return max(1, self.region_of_interest // self.scale)

    @property
    def scaled_warmup(self) -> int:
        """Warm-up instruction count after scaling."""
        return self.warmup_instructions // self.scale

    def scale_instructions(self, count: int) -> int:
        """Scale an arbitrary paper-level instruction count."""
        return max(1, count // self.scale)

    def scale_cache(self, cache: CacheConfig, factor: int = 0) -> CacheConfig:
        """Shrink a cache config by ``factor`` (default ``cache_scale``)."""
        factor = factor if factor else self.cache_scale
        size = cache.size_bytes // factor
        min_size = cache.line_size * cache.associativity
        size = max(min_size, (size // min_size) * min_size)
        return dataclasses.replace(cache, size_bytes=size)


#: Paper-fidelity profile: literal Table II / Section IV instruction counts.
FULL_SCALE = ScaleProfile(name="full", scale=1, cache_scale=1)

#: Default laptop profile used by the benchmarks (seconds per run).
#: Warm-up shrinks faster than the region of interest because the scaled
#: caches (cache_scale=32) fill in far fewer accesses than the full-size
#: caches the paper warmed for 50 M instructions.
DEFAULT_SCALE = ScaleProfile(
    name="default",
    scale=320,
    cache_scale=32,
    l1_scale=4,
    region_of_interest=200_000_000,
    warmup_instructions=16_000_000,
)

#: Fast profile for unit tests (sub-second runs).
TEST_SCALE = ScaleProfile(
    name="test",
    scale=2000,
    cache_scale=32,
    l1_scale=4,
    region_of_interest=200_000_000,
    warmup_instructions=8_000_000,
)


@dataclass(frozen=True)
class SimulatorConfig:
    """Top-level configuration consumed by :class:`repro.sim.Simulator`.

    ``num_user_cores`` above 1 enables the Section V.C scalability study in
    which several user cores share one OS core.  ``scaled`` caches are
    derived once at construction via :meth:`effective_memory`.
    """

    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemorySystemConfig = field(default_factory=MemorySystemConfig)
    profile: ScaleProfile = field(default_factory=lambda: DEFAULT_SCALE)
    num_user_cores: int = 1
    #: Hardware threads per user core.  The paper maps two threads per
    #: core on its server benchmarks so that "workloads that might
    #: stall on I/O operations ... continue making progress" — with >1,
    #: a core keeps executing its sibling thread while one thread is
    #: blocked on an off-load (blocked-switch semantics).  The
    #: calibrated headline runs use 1; the SMT-user-core ablation bench
    #: evaluates 2.
    threads_per_user_core: int = 1
    #: SMT hardware contexts on the OS core (1 = the paper's non-SMT
    #: core; >1 models the multi-threaded OS core its conclusion hints
    #: at for 1:N provisioning).
    os_core_contexts: int = 1
    seed: int = 2010
    enable_branch_model: bool = True
    enable_tlb: bool = False
    #: Model instruction fetch through a separate per-node L1I (Table
    #: II's I-cache).  Off by default: the calibrated headline numbers
    #: in EXPERIMENTS.md were fixed with data caches only; the I-cache
    #: ablation bench shows the shapes are robust to enabling it.
    enable_icache: bool = False
    track_energy: bool = False
    #: Invocations used to prime learning policies before the timed
    #: region.  The paper warms every run for 50 M instructions, which
    #: trains its predictor on thousands of invocations; replaying the
    #: invocation stream (without memory simulation) reproduces that
    #: steady state at negligible cost.  Applied identically to every
    #: policy; non-learning policies ignore it.
    policy_priming_invocations: int = 3000
    #: Whether SPARC register-window spill/fill traps are off-load
    #: candidates.  They are the bulk of the sub-100-instruction
    #: invocations whose off-loading produces the paper's N=0 coherence
    #: dip in Figure 4, so the default includes them; accuracy-style
    #: experiments can exclude them (the paper omits them "from our
    #: graphs where they skew results substantially from what would be
    #: seen on an alternative architecture", Section IV).
    include_window_traps: bool = True
    #: Memory-engine implementation driving reference streams through
    #: the hierarchy.  ``"batched"`` (default) consumes each event's
    #: whole reference array at once (numpy set-index precomputation,
    #: run-length grouping, inlined L1 fast path); ``"scalar"`` is the
    #: one-reference-per-iteration reference implementation;
    #: ``"columnar"`` materializes every trace up front and keeps L1
    #: state in flat numpy arrays over dense access keys, so a pure-hit
    #: batch commits as one gather + one scatter (optionally
    #: numba-compiled — see :mod:`repro.memory.columnar`).  All three
    #: are bit-identical — same statistics, trace events, and metrics —
    #: which the golden, engine-matrix and property suites enforce, so
    #: this knob only selects speed, never results.
    engine: str = "batched"
    #: Open-loop service mode: arrival model, offered load, OS-core
    #: pool size/dispatch, and admission control (see
    #: :class:`repro.service.config.ServiceConfig`).  The default is
    #: closed-loop with a single OS core — the historical behaviour the
    #: golden traces pin.  Every service knob is part of the config
    #: payload and fingerprint, so open-loop cells cache like any other.
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def __post_init__(self) -> None:
        if self.num_user_cores < 1:
            raise ConfigurationError("need at least one user core")
        if self.threads_per_user_core < 1:
            raise ConfigurationError("need at least one thread per user core")
        if self.os_core_contexts < 1:
            raise ConfigurationError("the OS core needs at least one context")
        if self.engine not in ENGINE_MODES:
            raise ConfigurationError(
                f"engine must be one of {sorted(ENGINE_MODES)}, "
                f"got {self.engine!r}"
            )
        if self.threads_per_user_core > 1 and self.service.open_loop:
            raise ConfigurationError(
                "open-loop service arrivals require single-threaded user "
                "cores (the SMT engine's blocked-switch scheduler has no "
                "arrival gating)"
            )

    def effective_memory(self) -> MemorySystemConfig:
        """Memory config with the profile's cache scaling applied."""
        return dataclasses.replace(
            self.memory,
            l1=self.profile.scale_cache(
                self.memory.l1, self.profile.effective_l1_scale
            ),
            l1i=self.profile.scale_cache(
                self.memory.l1i, self.profile.effective_l1_scale
            ),
            l2=self.profile.scale_cache(self.memory.l2),
        )


def table2_parameters() -> Dict[str, str]:
    """Render the paper's Table II as an ordered name -> value mapping.

    Used by the Table II benchmark to print the simulator parameters in the
    same shape the paper reports them.
    """
    mem = MemorySystemConfig()
    core = CoreConfig()
    return {
        "ISA": "UltraSPARC III ISA (abstracted)",
        "Core Frequency": f"{core.frequency_ghz} GHz @ 32nm",
        "Processor Pipeline": "In-Order",
        "TLB": f"{core.tlb_entries} Entry Fully Associative",
        "Coherence Protocol": "Directory Based MESI",
        "L1 I-cache": "32 KB/2-way, 1-cycle",
        "L1 D-cache": "32 KB/2-way, 1-cycle",
        "L2 Cache": f"{mem.l2.size_bytes // MB} MB/{mem.l2.associativity}-way, dual banked, {mem.l2.hit_latency}-cycle",
        "L1 and L2 Cache Line Size": f"{mem.line_size} Bytes",
        "Main Memory": f"{mem.dram_latency} Cycle Uniform Latency",
    }
