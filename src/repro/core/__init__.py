"""The paper's primary contribution: hardware-directed off-load decisions.

Contains the AState register hash, the run-length predictor (Fig. 2),
the Baseline/SI/DI/HI decision policies (Fig. 5), the software
instrumentation cost models (Fig. 1), and the dynamic-N threshold
controller (Section III.B).
"""

from repro.core.astate import astate_hash, direct_mapped_index
from repro.core.instrumentation import InstrumentationCosts, OfflineProfile
from repro.core.policies import (
    AlwaysOffload,
    Decision,
    DynamicInstrumentation,
    HardwareInstrumentation,
    NeverOffload,
    OffloadPolicy,
    OracleOffload,
    StaticInstrumentation,
)
from repro.core.predictor import (
    CAM_ENTRIES,
    DIRECT_MAPPED,
    DIRECT_MAPPED_ENTRIES,
    FULLY_ASSOCIATIVE,
    OracleRunLengthPredictor,
    RunLengthPredictor,
    is_close,
)
from repro.core.threshold import DEFAULT_GRID, DynamicThresholdController, Phase

__all__ = [
    "AlwaysOffload",
    "CAM_ENTRIES",
    "DEFAULT_GRID",
    "DIRECT_MAPPED",
    "DIRECT_MAPPED_ENTRIES",
    "Decision",
    "DynamicInstrumentation",
    "DynamicThresholdController",
    "FULLY_ASSOCIATIVE",
    "HardwareInstrumentation",
    "InstrumentationCosts",
    "NeverOffload",
    "OfflineProfile",
    "OffloadPolicy",
    "OracleOffload",
    "OracleRunLengthPredictor",
    "Phase",
    "RunLengthPredictor",
    "StaticInstrumentation",
    "astate_hash",
    "direct_mapped_index",
    "is_close",
]
