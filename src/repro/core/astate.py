"""The AState hash: the predictor's index function.

Section III.A: "we propose a new hardware predictor of OS invocation
length that XOR hashes the values of various architected registers.
After evaluating many register combinations, the following registers
were chosen for the SPARC architecture: PSTATE ..., g0 and g1 (global
registers), and i0 and i1 (input argument registers).  The XOR of these
registers yields a 64-bit value (that we refer to as AState) that encodes
pertinent information about the type of OS invocation, input values, and
the execution environment."

The hash is computed combinationally from registers that already exist,
which is why the hardware decision costs a single cycle.
"""

from __future__ import annotations

from repro.cpu.registers import MASK64, ArchitectedState


def astate_hash(state: ArchitectedState) -> int:
    """XOR-hash the five architected registers into the 64-bit AState."""
    return (state.pstate ^ state.g0 ^ state.g1 ^ state.i0 ^ state.i1) & MASK64


def direct_mapped_index(astate: int, table_size: int) -> int:
    """Index for the tag-less direct-mapped predictor organisation.

    The paper indexes with "the least significant bits of the AState";
    for table sizes that are not powers of two (the paper's RAM variant
    has 1,500 entries) the natural generalisation is the value of those
    low bits modulo the table size.
    """
    return astate % table_size
