"""Off-load decision policies: Baseline, SI, DI, HI, and Oracle.

Every policy answers the same question at every privileged-mode entry:
*should this OS invocation execute on the OS core?* — and charges the
user core whatever deciding costs:

=========  =======================================================
Baseline   never off-load; zero decision cost (no instrumentation)
SI         static instrumentation (Chakraborty et al. [10] style):
           off-line profiling selects routines with mean run length
           ≥ 2× the migration latency; only those carry the
           16-cycle threshold branch and they always off-load
DI         dynamic instrumentation (Mogul et al. [17] extended to
           all entry points): every entry pays the full software
           estimation cost, estimates the run length from the
           argument registers, and off-loads iff estimate > N
HI         the paper's hardware predictor: 1-cycle decision from
           the AState-indexed run-length table, off-load iff
           prediction > N
Oracle     perfect knowledge of the actual run length (bound)
=========  =======================================================

DI's estimate is the best a register-inspecting software stub can do: the
deterministic fast-path length given the argument registers.  It cannot
see bimodal slow paths (cache-dependent) or device-interrupt extensions —
the structural inaccuracies Section II attributes to instrumentation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.instrumentation import InstrumentationCosts, OfflineProfile
from repro.core.predictor import RunLengthPredictor
from repro.errors import ConfigurationError
from repro.os_model.runlength import deterministic_length
from repro.os_model.syscalls import CATALOGUE, Syscall
from repro.os_model.traps import (
    FILL_LENGTH,
    FILL_TRAP_VECTOR,
    SPILL_LENGTH,
    SPILL_TRAP_VECTOR,
)
from repro.workloads.base import OSInvocation


@dataclass(frozen=True)
class Decision:
    """Outcome of one off-load decision."""

    offload: bool
    overhead_cycles: int
    predicted_length: int


class OffloadPolicy(abc.ABC):
    """Interface every decision policy implements.

    ``threshold`` is the trigger N (instructions); policies that do not
    use a threshold (baseline, SI) ignore writes to it, which lets the
    dynamic-N controller drive any policy uniformly.
    """

    name: str = "abstract"

    def __init__(self, threshold: int = 1000) -> None:
        if threshold < 0:
            raise ConfigurationError("threshold N must be non-negative")
        self.threshold = threshold

    @abc.abstractmethod
    def decide(self, invocation: OSInvocation) -> Decision:
        """Decide whether to off-load ``invocation``."""

    def observe(self, invocation: OSInvocation, decision: Decision) -> None:
        """Feedback after the invocation completed (default: none)."""


class NeverOffload(OffloadPolicy):
    """The paper's baseline: everything runs on the user core."""

    name = "baseline"

    def decide(self, invocation: OSInvocation) -> Decision:
        return Decision(offload=False, overhead_cycles=0, predicted_length=0)


class AlwaysOffload(OffloadPolicy):
    """Off-load every privileged entry (the N=0 corner of Figure 4)."""

    name = "always"

    def decide(self, invocation: OSInvocation) -> Decision:
        return Decision(offload=True, overhead_cycles=0, predicted_length=invocation.length)


class StaticInstrumentation(OffloadPolicy):
    """SI: profile-guided static instrumentation of long routines.

    ``max_instrumented`` models the manual-effort reality the paper
    emphasises: with hundreds of syscalls per OS (Table I), the prior
    state of the art hand-instrumented only a handful of routines
    identified by "off-line profiling and developer intuition ... as
    typically long-running system calls".  When set, only the
    ``max_instrumented`` qualifying routines with the longest profiled
    means carry instrumentation.
    """

    name = "SI"

    def __init__(
        self,
        profile: OfflineProfile,
        migration_latency: int,
        costs: Optional[InstrumentationCosts] = None,
        max_instrumented: Optional[int] = None,
    ) -> None:
        super().__init__(threshold=2 * migration_latency)
        self.costs = costs if costs is not None else InstrumentationCosts()
        instrumented = profile.instrumented_vectors(migration_latency)
        if max_instrumented is not None and len(instrumented) > max_instrumented:
            keep = sorted(instrumented, key=lambda vec: instrumented[vec], reverse=True)
            instrumented = {v: instrumented[v] for v in keep[:max_instrumented]}
        self._instrumented = instrumented

    @property
    def instrumented_count(self) -> int:
        """Number of entry points that carry instrumentation."""
        return len(self._instrumented)

    def decide(self, invocation: OSInvocation) -> Decision:
        mean = self._instrumented.get(invocation.vector)
        if mean is None:
            # Uninstrumented routines pay nothing and never off-load.
            return Decision(offload=False, overhead_cycles=0, predicted_length=0)
        return Decision(
            offload=True,
            overhead_cycles=self.costs.static_branch,
            predicted_length=int(mean),
        )


def _syscall_by_vector() -> Dict[int, Syscall]:
    return {syscall.number: syscall for syscall in CATALOGUE.values()}


class DynamicInstrumentation(OffloadPolicy):
    """DI: software estimation at **all** OS entry points.

    The estimate is the fast-path deterministic length implied by the
    argument registers.  For entry points with no argument relationship
    (device interrupts), the stub falls back to a software-maintained
    last-observed length per vector — the best a generic software shim
    can do without hardware history.
    """

    name = "DI"

    def __init__(
        self,
        threshold: int = 1000,
        costs: Optional[InstrumentationCosts] = None,
    ) -> None:
        super().__init__(threshold=threshold)
        self.costs = costs if costs is not None else InstrumentationCosts()
        self._by_vector = _syscall_by_vector()
        self._last_seen: Dict[int, int] = {}

    def estimate(self, invocation: OSInvocation) -> int:
        """Software run-length estimate from the architected registers."""
        vector = invocation.vector
        if vector == SPILL_TRAP_VECTOR:
            return SPILL_LENGTH
        if vector == FILL_TRAP_VECTOR:
            return FILL_LENGTH
        syscall = self._by_vector.get(vector)
        if syscall is not None:
            # The stub reads the argument registers directly — including
            # the size operand the AState hash does not cover.
            return deterministic_length(
                syscall,
                invocation.astate.i0,
                invocation.size_units,
                slow_path=False,
            )
        return self._last_seen.get(vector, 0)

    def decide(self, invocation: OSInvocation) -> Decision:
        estimate = self.estimate(invocation)
        return Decision(
            offload=estimate > self.threshold,
            overhead_cycles=self.costs.dynamic,
            predicted_length=estimate,
        )

    def observe(self, invocation: OSInvocation, decision: Decision) -> None:
        self._last_seen[invocation.vector] = invocation.length


class HardwareInstrumentation(OffloadPolicy):
    """HI: the paper's predictor-directed hardware decision engine."""

    name = "HI"

    def __init__(
        self,
        threshold: int = 1000,
        predictor: Optional[RunLengthPredictor] = None,
        costs: Optional[InstrumentationCosts] = None,
    ) -> None:
        super().__init__(threshold=threshold)
        self.predictor = predictor if predictor is not None else RunLengthPredictor()
        self.costs = costs if costs is not None else InstrumentationCosts()

    def decide(self, invocation: OSInvocation) -> Decision:
        predicted = self.predictor.predict(invocation.astate)
        return Decision(
            offload=predicted > self.threshold,
            overhead_cycles=self.costs.hardware,
            predicted_length=predicted,
        )

    def observe(self, invocation: OSInvocation, decision: Decision) -> None:
        actual = invocation.length
        self.predictor.observe(invocation.astate, decision.predicted_length, actual)
        stats = self.predictor.stats
        stats.binary_total += 1
        if (decision.predicted_length > self.threshold) == (actual > self.threshold):
            stats.binary_correct += 1


class OracleOffload(OffloadPolicy):
    """Perfect-knowledge policy: an upper bound for ablation studies.

    It sees the invocation's true length (including interrupt
    extensions), pays no decision cost, and applies the same threshold
    rule as HI.
    """

    name = "oracle"

    def decide(self, invocation: OSInvocation) -> Decision:
        return Decision(
            offload=invocation.length > self.threshold,
            overhead_cycles=0,
            predicted_length=invocation.length,
        )
