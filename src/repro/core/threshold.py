"""Epoch-based dynamic estimation of the off-load threshold N.

Section III.B of the paper: the hardware predicts run lengths, but the
trigger threshold N "which provides best performance" must be found by
sampling candidate values with performance feedback — the averaged L2
hit rate of the user and OS cores.  The published procedure, reproduced
here:

- initial N is **1,000** when the application executes more than 10 % of
  its instructions in privileged mode, otherwise **10,000**;
- sampling epochs are **25 M instructions**; two alternate values of N —
  the grid neighbours above and below the current one — are sampled, and
  an alternate is adopted when its average L2 hit rate is **1 % better**;
- after choosing, the program runs uninterrupted for **100 M
  instructions**, then the two alternates are re-sampled; while the
  current N remains optimal, the uninterrupted stretch doubles (200 M,
  400 M, ...) to amortise sampling overhead; when N changes, it resets to
  100 M.

The controller is a pure state machine: the simulation engine tells it
when an epoch ended and what the epoch's L2 hit rate was; the controller
answers with the threshold and length for the next epoch.  That purity
makes it unit-testable without a simulator, and — as the paper notes for
its own software implementation — it runs at coarse granularity, so its
overhead is negligible next to per-syscall instrumentation.
"""

from __future__ import annotations

import enum
import logging
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.bus import NULL_BUS, TraceBus
from repro.obs.events import EpochEvent
from repro.sim.config import ScaleProfile

#: The coarse-grained candidate grid used throughout the paper's Figure 4.
DEFAULT_GRID: Tuple[int, ...] = (0, 100, 500, 1000, 5000, 10000)

#: Privileged-instruction share above which the initial N is the lower one.
PRIV_FRACTION_PIVOT = 0.10

INITIAL_N_OS_INTENSIVE = 1000
INITIAL_N_OS_LIGHT = 10000

logger = logging.getLogger(__name__)


class Phase(enum.Enum):
    """Controller phases; see module docstring for the protocol."""

    SAMPLE_BASE = "sample_base"
    SAMPLE_LOW = "sample_low"
    SAMPLE_HIGH = "sample_high"
    STABLE = "stable"


class DynamicThresholdController:
    """Samples the N grid with L2-hit-rate feedback (paper Section III.B)."""

    def __init__(
        self,
        profile: ScaleProfile,
        grid: Sequence[int] = DEFAULT_GRID,
        improvement_margin: float = 0.01,
        oscillation_window: int = 4,
    ) -> None:
        if len(grid) < 2:
            raise ConfigurationError("threshold grid needs at least two values")
        if sorted(grid) != list(grid):
            raise ConfigurationError("threshold grid must be ascending")
        if improvement_margin < 0:
            raise ConfigurationError("improvement margin must be non-negative")
        if oscillation_window < 2:
            raise ConfigurationError("oscillation window must be at least 2")
        self.grid = tuple(grid)
        self.improvement_margin = improvement_margin
        self.sample_epoch = profile.scale_instructions(25_000_000)
        self.base_stable_epoch = profile.scale_instructions(100_000_000)
        self._stable_epoch = self.base_stable_epoch
        self._index: Optional[int] = None
        self._phase = Phase.SAMPLE_BASE
        self._base_rate = 0.0
        self._low_rate: Optional[float] = None
        self._high_rate: Optional[float] = None
        self._had_stable = False
        self.adjustments = 0
        self.epochs_observed = 0
        # Phase-instability damping (Section III.B: "if phase changes are
        # frequent ... the epoch length can be gradually increased until
        # stable behavior is observed over many epochs").  When every one
        # of the last `oscillation_window` choices adjusted N, the
        # sampling epoch itself is doubled so decisions average over the
        # churn.
        self.oscillation_window = oscillation_window
        self._recent_choices: List[bool] = []
        self.sample_epoch_growths = 0
        #: Observability channel; the engine re-points this at its own
        #: bus so controller epochs land in the same trace.
        self.bus: TraceBus = NULL_BUS

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def begin(self, privileged_fraction: float) -> None:
        """Choose the initial N from the privileged-instruction share."""
        if not 0.0 <= privileged_fraction <= 1.0:
            raise ConfigurationError("privileged_fraction must be in [0, 1]")
        initial = (
            INITIAL_N_OS_INTENSIVE
            if privileged_fraction > PRIV_FRACTION_PIVOT
            else INITIAL_N_OS_LIGHT
        )
        self._index = self._nearest_index(initial)
        self._phase = Phase.SAMPLE_BASE

    def _nearest_index(self, value: int) -> int:
        return min(range(len(self.grid)), key=lambda i: abs(self.grid[i] - value))

    @property
    def started(self) -> bool:
        return self._index is not None

    @property
    def phase(self) -> Phase:
        return self._phase

    @property
    def threshold(self) -> int:
        """The N the engine should apply during the *current* epoch."""
        if self._index is None:
            raise ConfigurationError("controller not started; call begin() first")
        if self._phase == Phase.SAMPLE_LOW and self._index > 0:
            return self.grid[self._index - 1]
        if self._phase == Phase.SAMPLE_HIGH and self._index < len(self.grid) - 1:
            return self.grid[self._index + 1]
        return self.grid[self._index]

    @property
    def epoch_length(self) -> int:
        """Instruction length of the current epoch."""
        if self._phase == Phase.STABLE:
            return self._stable_epoch
        return self.sample_epoch

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------

    def on_epoch_end(self, l2_hit_rate: float) -> None:
        """Advance the state machine with the finished epoch's feedback."""
        if self._index is None:
            raise ConfigurationError("controller not started; call begin() first")
        self.epochs_observed += 1
        phase_before = self._phase
        candidate_n = self.threshold
        index_before = self._index
        if self._phase == Phase.SAMPLE_BASE:
            self._base_rate = l2_hit_rate
            self._low_rate = None
            self._high_rate = None
            self._phase = Phase.SAMPLE_LOW if self._index > 0 else Phase.SAMPLE_HIGH
        elif self._phase == Phase.SAMPLE_LOW:
            self._low_rate = l2_hit_rate
            if self._index < len(self.grid) - 1:
                self._phase = Phase.SAMPLE_HIGH
            else:
                self._choose()
        elif self._phase == Phase.SAMPLE_HIGH:
            self._high_rate = l2_hit_rate
            self._choose()
        else:  # STABLE: the long epoch doubles as the next base sample
            self._base_rate = l2_hit_rate
            self._low_rate = None
            self._high_rate = None
            self._phase = Phase.SAMPLE_LOW if self._index > 0 else Phase.SAMPLE_HIGH
        if self.bus.enabled:
            # An epoch that ended in a choice reports whether the sampled
            # alternate was adopted; pure sampling epochs report None.
            chose = (
                self._phase == Phase.STABLE and phase_before != Phase.STABLE
            )
            self.bus.emit(EpochEvent(
                epoch=self.epochs_observed,
                phase=phase_before.value,
                candidate_n=candidate_n,
                l2_hit_rate=l2_hit_rate,
                accepted=(self._index != index_before) if chose else None,
                next_n=self.threshold,
            ))

    def _choose(self) -> None:
        """Adopt an alternate N when it beats the base by the margin."""
        assert self._index is not None
        best_index = self._index
        best_rate = self._base_rate + self.improvement_margin
        if self._low_rate is not None and self._low_rate >= best_rate:
            best_index = self._index - 1
            best_rate = self._low_rate
        if self._high_rate is not None and self._high_rate >= best_rate:
            best_index = self._index + 1
            best_rate = self._high_rate
        if best_index != self._index:
            logger.debug(
                "dynamic-N adjusted: %d -> %d (epoch %d)",
                self.grid[self._index], self.grid[best_index],
                self.epochs_observed,
            )
            self._index = best_index
            self._stable_epoch = self.base_stable_epoch
            self.adjustments += 1
            self._record_choice(changed=True)
        elif self._had_stable:
            # Current N still optimal: double the uninterrupted stretch.
            self._stable_epoch = min(self._stable_epoch * 2, 2 ** 40)
            self._record_choice(changed=False)
        else:
            self._record_choice(changed=False)
        self._had_stable = True
        self._phase = Phase.STABLE

    def _record_choice(self, changed: bool) -> None:
        """Track recent decisions; grow epochs under constant churn."""
        self._recent_choices.append(changed)
        if len(self._recent_choices) > self.oscillation_window:
            self._recent_choices.pop(0)
        if (
            len(self._recent_choices) == self.oscillation_window
            and all(self._recent_choices)
        ):
            self.sample_epoch = min(self.sample_epoch * 2, 2 ** 40)
            self.sample_epoch_growths += 1
            self._recent_choices.clear()
