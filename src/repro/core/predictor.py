"""The hardware OS run-length predictor (paper Section III.A, Fig. 2).

Organisation (the paper's preferred design point):

- a **200-entry fully-associative table** (CAM on the 64-bit AState)
  storing, per entry, the run length observed the last time that AState
  was seen plus a **2-bit saturating confidence counter** — about 2 KB of
  state;
- the confidence counter is incremented when a prediction lands within
  ±5 % of the actual run length and decremented otherwise;
- when the confidence is 0 (or the AState misses in the table) the
  predictor emits a **global** prediction instead: the average run length
  of the last three observed invocations regardless of AState — "OS
  invocation lengths tend to be clustered and a global prediction can be
  better than a low-confidence local prediction";
- an alternative **1,500-entry tag-less direct-mapped** organisation
  (~3.3 KB) indexes with the low AState bits and performs similarly.

The binary off-load decision distils the discrete prediction: off-load
iff the predicted length exceeds the threshold N.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, List, Optional

from repro.core.astate import astate_hash, direct_mapped_index
from repro.cpu.registers import ArchitectedState
from repro.errors import PredictorError
from repro.sim.stats import PredictorStats

#: Organisation selector values.
FULLY_ASSOCIATIVE = "cam"
DIRECT_MAPPED = "direct"

#: Paper design points.
CAM_ENTRIES = 200
DIRECT_MAPPED_ENTRIES = 1500

#: ±5 % is the paper's "close prediction" band and confidence criterion.
CLOSE_TOLERANCE = 0.05

_CONFIDENCE_MAX = 3  # 2-bit saturating counter


class _Entry:
    """One predictor table entry: last observed length + confidence."""

    __slots__ = ("length", "confidence")

    def __init__(self, length: int, confidence: int = 1) -> None:
        self.length = length
        self.confidence = confidence


def is_close(predicted: int, actual: int, tolerance: float = CLOSE_TOLERANCE) -> bool:
    """True when ``predicted`` is within ``±tolerance`` of ``actual``."""
    return abs(predicted - actual) <= tolerance * actual


class RunLengthPredictor:
    """AState-indexed last-value predictor with confidence and fallback.

    Parameters
    ----------
    entries:
        Table capacity (200 for the CAM, 1,500 for the direct-mapped
        organisation in the paper).
    organisation:
        ``"cam"`` — fully associative with LRU replacement on the full
        64-bit AState; ``"direct"`` — tag-less direct-mapped on the low
        AState bits (aliasing AStates share an entry, as in hardware).
    global_history:
        Window of the global fallback average (3 in the paper).
    use_confidence:
        Disabling the confidence mechanism (always trust the local entry)
        is exposed for the predictor ablation benchmark.
    use_global_fallback:
        Disabling the fallback makes a table miss predict 0; also for the
        ablation.
    stats:
        Optional shared :class:`PredictorStats`; accuracy accounting is
        performed in :meth:`observe`.
    """

    def __init__(
        self,
        entries: int = CAM_ENTRIES,
        organisation: str = FULLY_ASSOCIATIVE,
        global_history: int = 3,
        use_confidence: bool = True,
        use_global_fallback: bool = True,
        stats: Optional[PredictorStats] = None,
    ) -> None:
        if entries <= 0:
            raise PredictorError("predictor table needs at least one entry")
        if organisation not in (FULLY_ASSOCIATIVE, DIRECT_MAPPED):
            raise PredictorError(f"unknown organisation {organisation!r}")
        if global_history <= 0:
            raise PredictorError("global history window must be positive")
        self.entries = entries
        self.organisation = organisation
        self.use_confidence = use_confidence
        self.use_global_fallback = use_global_fallback
        self.stats = stats if stats is not None else PredictorStats()
        self._recent: Deque[int] = deque(maxlen=global_history)
        if organisation == FULLY_ASSOCIATIVE:
            self._cam: "OrderedDict[int, _Entry]" = OrderedDict()
            self._ram: List[Optional[_Entry]] = []
        else:
            self._cam = OrderedDict()
            self._ram = [None] * entries

    # ------------------------------------------------------------------
    # lookup / update
    # ------------------------------------------------------------------

    def _find(self, astate: int, touch: bool) -> Optional[_Entry]:
        if self.organisation == FULLY_ASSOCIATIVE:
            entry = self._cam.get(astate)
            if entry is not None and touch:
                self._cam.move_to_end(astate)
            return entry
        return self._ram[direct_mapped_index(astate, self.entries)]

    def _global_prediction(self) -> int:
        if not self._recent:
            return 0
        return int(round(sum(self._recent) / len(self._recent)))

    def predict(self, state: ArchitectedState) -> int:
        """Predict the run length of the invocation starting with ``state``."""
        return self.predict_hash(astate_hash(state))

    def predict_hash(self, astate: int) -> int:
        """Predict from a pre-computed AState hash value."""
        self.stats.predictions += 1
        entry = self._find(astate, touch=True)
        if entry is not None and (not self.use_confidence or entry.confidence > 0):
            return entry.length
        if self.use_global_fallback:
            self.stats.global_fallbacks += 1
            return self._global_prediction()
        return entry.length if entry is not None else 0

    def observe(self, state: ArchitectedState, predicted: int, actual: int) -> None:
        """Train on a completed invocation and record accuracy.

        ``predicted`` must be the value :meth:`predict` returned for this
        invocation (the emitted prediction, possibly the global fallback);
        the confidence update compares the *local entry's* stored value
        against the actual, per the paper's mechanism.
        """
        self.observe_hash(astate_hash(state), predicted, actual)

    def observe_hash(self, astate: int, predicted: int, actual: int) -> None:
        if actual <= 0:
            raise PredictorError("actual run length must be positive")
        if predicted == actual:
            self.stats.exact += 1
        elif is_close(predicted, actual):
            self.stats.close += 1

        entry = self._find(astate, touch=False)
        if entry is None:
            self._insert(astate, actual)
        else:
            if is_close(entry.length, actual):
                if entry.confidence < _CONFIDENCE_MAX:
                    entry.confidence += 1
            else:
                if entry.confidence > 0:
                    entry.confidence -= 1
            entry.length = actual
        self._recent.append(actual)

    def _insert(self, astate: int, length: int) -> None:
        if self.organisation == FULLY_ASSOCIATIVE:
            if len(self._cam) >= self.entries:
                self._cam.popitem(last=False)  # evict LRU
            self._cam[astate] = _Entry(length)
        else:
            self._ram[direct_mapped_index(astate, self.entries)] = _Entry(length)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def confidence_for(self, state: ArchitectedState) -> int:
        """Current confidence of the entry covering ``state``; -1 on miss.

        Read-only (no LRU touch): the observability layer records the
        confidence that backed a decision without perturbing replacement.
        """
        return self.confidence_for_hash(astate_hash(state))

    def confidence_for_hash(self, astate: int) -> int:
        entry = self._find(astate, touch=False)
        return entry.confidence if entry is not None else -1

    @property
    def occupancy(self) -> int:
        """Number of valid entries currently in the table."""
        if self.organisation == FULLY_ASSOCIATIVE:
            return len(self._cam)
        return sum(1 for e in self._ram if e is not None)

    def storage_bits(self) -> int:
        """Approximate storage cost of this organisation in bits.

        CAM entries hold the 64-bit AState tag, a run-length field, and
        the 2-bit confidence; the direct-mapped organisation is tag-less.
        The paper quotes ~2 KB for the 200-entry CAM and ~3.3 KB for the
        1,500-entry RAM, which these formulas approximate with a 16-bit
        run-length field.
        """
        length_bits = 16
        confidence_bits = 2
        if self.organisation == FULLY_ASSOCIATIVE:
            return self.entries * (64 + length_bits + confidence_bits)
        return self.entries * (length_bits + confidence_bits)


class OracleRunLengthPredictor:
    """Perfect predictor used as an upper bound in ablation benchmarks.

    ``predict`` cannot know the future, so callers supply the actual
    length through :meth:`prime` before asking; the simulator engine does
    this only for the oracle policy.
    """

    def __init__(self, stats: Optional[PredictorStats] = None) -> None:
        self.stats = stats if stats is not None else PredictorStats()
        self._next: int = 0

    def prime(self, actual: int) -> None:
        self._next = actual

    def predict(self, state: ArchitectedState) -> int:
        self.stats.predictions += 1
        return self._next

    def observe(self, state: ArchitectedState, predicted: int, actual: int) -> None:
        if predicted == actual:
            self.stats.exact += 1
        elif is_close(predicted, actual):
            self.stats.close += 1
