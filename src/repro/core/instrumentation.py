"""Software instrumentation cost models and offline profiling.

Section II quantifies what software-based off-load decisions cost:

- instrumenting OpenSolaris ``getpid`` with a *single static threshold
  branch* grows it from 17 to 33 instructions — roughly 16 extra
  instructions on every invocation of an instrumented routine;
- "examining multiple register values, or accessing internal data
  structures can easily bloat this overhead to hundreds of cycles", which
  is what a dynamic all-entry-points instrumentation (the software
  equivalent of the paper's hardware engine) must pay;
- the proposed hardware predictor decides in a **single cycle**.

This module also provides the *offline profiling* step that static
instrumentation (Chakraborty-style) relies on: run a training trace and
record each OS entry point's mean run length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.sim.config import ScaleProfile
from repro.workloads.base import OSInvocation, WorkloadSpec
from repro.workloads.generator import TraceGenerator

#: Decision cost of the hardware predictor (Section III: single cycle).
HARDWARE_DECISION_COST = 1

#: Decision cost of a simple static threshold branch (getpid: 17 -> 33).
STATIC_BRANCH_COST = 16

#: Decision cost of full software estimation at an OS entry point.
DYNAMIC_ESTIMATION_COST = 180


@dataclass(frozen=True)
class InstrumentationCosts:
    """Cycle costs charged at a privileged-mode entry by each approach.

    ``dynamic`` spans "tens of cycles in basic implementations to
    hundreds of cycles in complex implementations"; Figure 1 sweeps it.
    """

    hardware: int = HARDWARE_DECISION_COST
    static_branch: int = STATIC_BRANCH_COST
    dynamic: int = DYNAMIC_ESTIMATION_COST

    def __post_init__(self) -> None:
        if self.hardware < 0 or self.static_branch < 0 or self.dynamic < 0:
            raise ConfigurationError("instrumentation costs must be non-negative")


class OfflineProfile:
    """Per-entry-point mean run lengths from a profiling run.

    This is the artefact the static-instrumentation flow consumes: the
    set of OS routines (identified by trap/syscall vector) whose profiled
    mean run length justifies instrumentation.
    """

    def __init__(self, mean_lengths: Dict[int, float], invocations: int) -> None:
        self.mean_lengths = dict(mean_lengths)
        self.invocations = invocations

    @classmethod
    def collect(
        cls,
        spec: WorkloadSpec,
        profile: ScaleProfile,
        seed: int = 77,
        num_invocations: int = 4000,
    ) -> "OfflineProfile":
        """Profile a workload off-line: mean run length per vector.

        Uses a *different seed* than evaluation runs by default, exactly
        as off-line profiling in practice observes a different execution
        than the one being optimised — one of the inaccuracies the paper
        attributes to the approach.
        """
        generator = TraceGenerator(spec, profile, seed=seed)
        totals: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        seen = 0
        # A generous instruction budget; iteration stops at the target
        # invocation count.
        for event in generator.events(instruction_budget=2 ** 62):
            if not isinstance(event, OSInvocation):
                continue
            totals[event.vector] = totals.get(event.vector, 0.0) + event.length
            counts[event.vector] = counts.get(event.vector, 0) + 1
            seen += 1
            if seen >= num_invocations:
                break
        means = {vector: totals[vector] / counts[vector] for vector in totals}
        return cls(means, seen)

    def mean_length(self, vector: int) -> float:
        """Profiled mean run length of ``vector`` (0.0 when never seen)."""
        return self.mean_lengths.get(vector, 0.0)

    def instrumented_vectors(self, migration_latency: int) -> Dict[int, float]:
        """Vectors whose mean run length is at least twice the migration latency.

        This is the paper's SI selection rule: "statically instrument
        only those OS routines that are determined to have a run-length
        that is twice the off-loading (migration) latency".
        """
        cutoff = 2.0 * migration_latency
        return {
            vector: mean
            for vector, mean in self.mean_lengths.items()
            if mean >= cutoff
        }
