"""Metric helpers shared by the experiment modules.

Everything the paper reports is either a normalized throughput (relative
IPC), an accuracy percentage, or an occupancy percentage; this module
centralises the arithmetic (normalization, geometric means for workload
groups, percentage formatting) so experiment modules stay declarative.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.errors import ConfigurationError


def normalized(value: float, baseline: float) -> float:
    """``value / baseline`` with a loud error on degenerate baselines."""
    if baseline <= 0:
        raise ConfigurationError(f"baseline must be positive, got {baseline}")
    return value / baseline


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean — the conventional aggregate for normalized IPC.

    Raises on empty input or non-positive entries, both of which indicate
    an upstream experiment bug rather than a data condition.
    """
    values = list(values)
    if not values:
        raise ConfigurationError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ConfigurationError(f"non-positive value in {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ConfigurationError("mean of no values")
    return sum(values) / len(values)


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction in [0, 1] as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def speedup_summary(series: Dict[int, float]) -> Dict[str, float]:
    """Summarise a threshold->normalized-IPC curve.

    Returns the best point, its threshold, and the N=0 penalty relative
    to the best — the quantities the paper's Figure 4 discussion calls
    out (optimal N, and how much N=0 loses to it).
    """
    if not series:
        raise ConfigurationError("empty threshold series")
    best_n = max(series, key=lambda n: series[n])
    summary = {
        "best_threshold": float(best_n),
        "best_normalized": series[best_n],
    }
    if 0 in series:
        summary["n0_penalty"] = series[best_n] - series[0]
    return summary


def column_widths(rows: Sequence[Sequence[str]]) -> List[int]:
    """Widths that align a list of string rows into columns."""
    if not rows:
        return []
    widths = [0] * max(len(r) for r in rows)
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    return widths
