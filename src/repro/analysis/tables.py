"""Plain-text rendering of paper-style tables and figure series.

The benchmark harness prints each reproduced table/figure in roughly the
shape the paper reports it; this module owns the formatting so every
bench renders consistently.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.metrics import column_widths


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    Cells are converted with ``str``; floats should be pre-formatted by
    the caller so each experiment controls its own precision.
    """
    string_rows: List[List[str]] = [[str(h) for h in headers]]
    string_rows += [[str(c) for c in row] for row in rows]
    widths = column_widths(string_rows)
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(string_rows[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in string_rows[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    named_series: Dict[str, Sequence[float]],
    fmt: str = "{:.3f}",
) -> str:
    """Render figure-style data: one row per named curve over shared x.

    This is the textual equivalent of one panel of the paper's Figure 4:
    the x axis is the threshold N, each curve a migration latency.
    """
    headers = [x_label] + [str(x) for x in xs]
    rows: List[List[str]] = []
    for name, ys in named_series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )
        rows.append([name] + [fmt.format(y) for y in ys])
    return render_table(headers, rows, title=title)


def render_bars(
    title: str,
    bars: Sequence[Tuple[str, float]],
    fmt: str = "{:.3f}",
    scale: float = 40.0,
) -> str:
    """Render labelled values with a crude ASCII bar (Figure 5 style)."""
    lines = [title] if title else []
    if not bars:
        return title
    peak = max(value for _, value in bars)
    width = max(len(label) for label, _ in bars)
    for label, value in bars:
        bar = "#" * max(1, int(round(scale * value / peak))) if peak > 0 else ""
        lines.append(f"{label.ljust(width)}  {fmt.format(value):>8}  {bar}")
    return "\n".join(lines)
