"""Post-run report generation from a JSONL trace.

A traced run (``repro run --trace out.jsonl`` or a
:class:`~repro.obs.JsonlSink` attached by hand) leaves a file of typed
event records plus a summary record of the run's final counters.  This
module replays that file into the four views the paper's evaluation
keeps returning to:

- **decision accuracy by vector** — which entry points the predictor
  got right, and where the off-loads actually came from (Fig. 3's
  binary accuracy, resolved per syscall/trap);
- **threshold-adaptation timeline** — every dynamic-N epoch: candidate
  sampled, L2 feedback, adopt/keep verdict (Section III.B);
- **queue-delay histogram** — the Section V.C contention signature,
  plus a blocked-time decomposition derived from the summary counters
  (rendered even when the trace recorded no queue/migration events);
- **request-latency CDF** — open-loop service-mode traces only: the
  exact nearest-rank latency distribution replayed from
  :class:`~repro.obs.RequestEvent` records;
- **per-core cycle attribution** — where each user core's wall time
  went (execute, off-load wait, queue, decision, migration, idle).

The report also *reconciles* the trace against the summary record: the
ROI :class:`~repro.obs.DecisionEvent` off-load verdicts must count up to
exactly the run's ``OffloadStats.offloads``.  A mismatch means the trace
is truncated or the instrumentation drifted from the engine — either
way, a bug worth failing loudly over.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.tables import render_table
from repro.errors import ReproError
from repro.obs.events import (
    HEADER_KIND,
    PHASE_ROI,
    SUMMARY_KIND,
    DecisionEvent,
    EpochEvent,
    MigrationEvent,
    QueueEvent,
    RequestEvent,
    decode_record,
)
from repro.obs.metrics import Histogram
from repro.service.latency import LatencyAccumulator, LatencyStats

logger = logging.getLogger(__name__)

#: Queue-delay report buckets; mirrors the engine's metric boundaries.
QUEUE_BUCKETS = (0, 50, 100, 250, 500, 1000, 2500, 5000, 25000, 100000)


def load_run_trace(
    path: Union[str, Path]
) -> Tuple[Dict, List, Optional[Dict]]:
    """Read a trace file into ``(header, events, summary)``.

    ``events`` holds the typed event objects in file order; ``summary``
    is ``None`` when the run ended before the summary record was
    written (e.g. a crashed run), which the report surfaces rather than
    hides.

    A file with no records at all — a run that died before emitting its
    header, or a sink that never saw an event — yields ``({}, [], None)``
    so callers can render an explicitly empty report.  A file that *has*
    records but no header is still rejected: that trace is truncated or
    interleaved, and reporting on it would attribute events to the wrong
    run.
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(f"trace file not found: {path}")
    header: Dict = {}
    summary: Optional[Dict] = None
    events: List = []
    saw_record = False
    with path.open() as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{path}:{line_number + 1}: not valid JSON ({error})"
                ) from error
            saw_record = True
            decoded = decode_record(record)
            kind = record.get("kind")
            if kind == HEADER_KIND:
                header = decoded
            elif kind == SUMMARY_KIND:
                summary = decoded
            else:
                events.append(decoded)
    if not header and saw_record:
        raise ReproError(f"{path}: missing trace header record")
    return header, events, summary


@dataclass
class VectorDecisions:
    """Aggregated ROI decisions for one OS entry point."""

    name: str
    decisions: int = 0
    offloads: int = 0
    predicted_sum: int = 0
    actual_sum: int = 0
    binary_correct: int = 0

    @property
    def mean_predicted(self) -> float:
        return self.predicted_sum / self.decisions if self.decisions else 0.0

    @property
    def mean_actual(self) -> float:
        return self.actual_sum / self.decisions if self.decisions else 0.0

    @property
    def binary_accuracy(self) -> float:
        return self.binary_correct / self.decisions if self.decisions else 1.0


@dataclass
class RunReport:
    """Everything :func:`build_report` distilled from one trace file."""

    path: str
    header: Dict
    summary: Optional[Dict]
    by_vector: Dict[int, VectorDecisions] = field(default_factory=dict)
    epochs: List[EpochEvent] = field(default_factory=list)
    queue_histogram: Optional[Histogram] = None
    roi_decisions: int = 0
    roi_offloads: int = 0
    warmup_decisions: int = 0
    migrations: int = 0
    migration_cycles_total: int = 0
    latency: Optional[LatencyStats] = None

    # ------------------------------------------------------------------
    # reconciliation
    # ------------------------------------------------------------------

    @property
    def reconciled(self) -> Optional[bool]:
        """ROI off-load verdicts vs. the run's final offload counter.

        ``None`` when the trace has no summary record to check against.
        """
        if self.summary is None:
            return None
        return self.roi_offloads == self.summary.get("offloads")

    def require_reconciled(self) -> None:
        if self.reconciled is False:
            raise ReproError(
                f"{self.path}: trace does not reconcile — "
                f"{self.roi_offloads} ROI off-load verdicts vs "
                f"{self.summary.get('offloads')} recorded off-loads"
            )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        sections = [self._render_provenance()]
        sections.append(self._render_decisions())
        sections.append(self._render_epochs())
        sections.append(self._render_queue())
        sections.append(self._render_latency())
        sections.append(self._render_cores())
        sections.append(self._render_reconciliation())
        return "\n\n".join(s for s in sections if s)

    def _render_provenance(self) -> str:
        bits = [f"trace: {self.path}"]
        for key in ("workload", "policy", "threshold", "latency", "seed",
                    "profile"):
            value = self.header.get(key)
            if value not in (None, ""):
                bits.append(f"{key}: {value}")
        return "\n".join(bits)

    def _render_decisions(self) -> str:
        if not self.by_vector:
            return "no ROI decisions recorded"
        rows = [
            (
                vector,
                agg.name,
                agg.decisions,
                agg.offloads,
                f"{agg.mean_predicted:.0f}",
                f"{agg.mean_actual:.0f}",
                f"{100.0 * agg.binary_accuracy:.1f}%",
            )
            for vector, agg in sorted(
                self.by_vector.items(),
                key=lambda item: -item[1].decisions,
            )
        ]
        return render_table(
            ["vector", "name", "decisions", "offloads",
             "mean pred", "mean actual", "binary acc"],
            rows,
            title="Decision accuracy by vector (region of interest)",
        )

    def _render_epochs(self) -> str:
        if not self.epochs:
            return "no dynamic-N epochs recorded (fixed-threshold run)"
        rows = []
        for event in self.epochs:
            verdict = "-"
            if event.accepted is True:
                verdict = "adopt"
            elif event.accepted is False:
                verdict = "keep"
            rows.append((
                event.epoch, event.phase, event.candidate_n,
                f"{event.l2_hit_rate:.4f}", verdict, event.next_n,
            ))
        return render_table(
            ["epoch", "phase", "candidate N", "L2 hit rate",
             "verdict", "next N"],
            rows,
            title="Threshold-adaptation timeline",
        )

    def _render_queue(self) -> str:
        hist = self.queue_histogram
        if hist is None or hist.count == 0:
            # The blocked-time decomposition below comes from the
            # summary record's counters, so it renders even for traces
            # with no queue/migration events at all.
            body = "no off-loads queued at the OS core"
        else:
            rows = []
            for edge, bucket in zip(hist.boundaries, hist.bucket_counts):
                rows.append((f"<= {edge}", bucket))
            rows.append((f"> {hist.boundaries[-1]}", hist.bucket_counts[-1]))
            table = render_table(
                ["queue delay (cycles)", "off-loads"],
                rows,
                title="Queue-delay histogram (region of interest)",
            )
            body = table + (
                f"\nmean queue delay: {hist.mean:,.0f} cycles over "
                f"{hist.count} off-loads"
            )
        decomposition = self._render_wait_decomposition()
        if decomposition:
            body += "\n" + decomposition
        return body

    def _render_wait_decomposition(self) -> Optional[str]:
        """Blocked-time breakdown from the summary's per-core counters.

        Derived from the counters rather than replayed migration/queue
        events, so it is available for every completed run — including
        one whose policy never off-loaded (all components zero) or
        whose trace was recorded without per-event migration data.
        """
        if self.summary is None:
            return None
        cores = self.summary.get("cores", [])
        if not cores:
            return None
        queue = sum(core.get("queue_cycles", 0) for core in cores)
        migration = sum(core.get("migration_cycles", 0) for core in cores)
        wait = sum(core.get("offload_wait_cycles", 0) for core in cores)
        service = max(0, wait - queue - migration)
        return (
            f"off-load wait decomposition: {wait:,} blocked cycles = "
            f"{queue:,} queued + {migration:,} migrating + "
            f"{service:,} in service"
        )

    def _render_latency(self) -> str:
        lat = self.latency
        if lat is None:
            return ""
        rows = [
            (f"p{quantile * 100:g}", f"{value:,}")
            for quantile, value in lat.cdf
        ]
        table = render_table(
            ["quantile", "latency (cycles)"],
            rows,
            title="Request latency CDF (open-loop service mode, ROI)",
        )
        return table + (
            f"\n{lat.requests} requests: p50={lat.p50:,} p99={lat.p99:,} "
            f"p999={lat.p999:,} mean={lat.mean:,.0f} max={lat.max:,} "
            f"cycles (queue {lat.queue_cycles:,} + migration "
            f"{lat.migration_cycles:,} + execution "
            f"{lat.execution_cycles:,})"
        )

    def _render_cores(self) -> str:
        if self.summary is None:
            return "no summary record: per-core attribution unavailable"
        rows = []
        for index, core in enumerate(self.summary.get("cores", [])):
            idle = core.get("idle_cycles", 0)
            total = (
                core["busy_cycles"] + core["offload_wait_cycles"]
                + core["decision_cycles"] + idle
            )
            rows.append((
                f"user{index}", core["instructions"], core["busy_cycles"],
                core["offload_wait_cycles"], core["queue_cycles"],
                core["decision_cycles"], core["migration_cycles"],
                idle, total,
            ))
        os_core = self.summary.get("os_core", {})
        rows.append((
            "os", os_core.get("instructions", 0),
            os_core.get("busy_cycles", 0), "-", "-", "-", "-", "-",
            os_core.get("busy_cycles", 0),
        ))
        return render_table(
            ["core", "instructions", "busy", "offload wait", "queue",
             "decision", "migration", "idle", "total"],
            rows,
            title="Per-core cycle attribution",
        )

    def _render_reconciliation(self) -> str:
        if self.summary is None:
            return ("reconciliation: SKIPPED (no summary record; "
                    "was the run interrupted?)")
        recorded = self.summary.get("offloads")
        status = "OK" if self.reconciled else "MISMATCH"
        return (
            f"reconciliation: {status} — {self.roi_offloads} ROI off-load "
            f"verdicts in the trace, {recorded} off-loads recorded by the "
            f"run ({self.roi_decisions} ROI decisions, "
            f"{self.warmup_decisions} warm-up decisions, "
            f"{self.migrations} migrations / "
            f"{self.migration_cycles_total} migration cycles)"
        )

    # ------------------------------------------------------------------
    # machine-readable form
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "path": self.path,
            "header": {k: v for k, v in self.header.items() if k != "kind"},
            "summary": (
                {k: v for k, v in self.summary.items() if k != "kind"}
                if self.summary is not None else None
            ),
            "reconciled": self.reconciled,
            "roi_decisions": self.roi_decisions,
            "roi_offloads": self.roi_offloads,
            "warmup_decisions": self.warmup_decisions,
            "migrations": self.migrations,
            "by_vector": {
                vector: {
                    "name": agg.name,
                    "decisions": agg.decisions,
                    "offloads": agg.offloads,
                    "mean_predicted": agg.mean_predicted,
                    "mean_actual": agg.mean_actual,
                    "binary_accuracy": agg.binary_accuracy,
                }
                for vector, agg in sorted(self.by_vector.items())
            },
            "epochs": [event.to_record() for event in self.epochs],
            "queue_delay": (
                {
                    "count": self.queue_histogram.count,
                    "mean": self.queue_histogram.mean,
                    "boundaries": list(self.queue_histogram.boundaries),
                    "buckets": list(self.queue_histogram.bucket_counts),
                }
                if self.queue_histogram is not None else None
            ),
            "latency": (
                self.latency.to_dict() if self.latency is not None else None
            ),
        }


def build_report(path: Union[str, Path]) -> RunReport:
    """Replay a trace file into a :class:`RunReport`."""
    header, events, summary = load_run_trace(path)
    report = RunReport(path=str(path), header=header, summary=summary)
    queue_hist = Histogram("queue_delay", QUEUE_BUCKETS)
    latency_acc = LatencyAccumulator()
    for event in events:
        if isinstance(event, DecisionEvent):
            if event.phase != PHASE_ROI:
                report.warmup_decisions += 1
                continue
            report.roi_decisions += 1
            if event.offload:
                report.roi_offloads += 1
            agg = report.by_vector.get(event.vector)
            if agg is None:
                agg = VectorDecisions(name=event.name)
                report.by_vector[event.vector] = agg
            agg.decisions += 1
            agg.offloads += int(event.offload)
            agg.predicted_sum += event.predicted
            agg.actual_sum += event.actual
            correct = (
                (event.predicted > event.threshold)
                == (event.actual > event.threshold)
            )
            agg.binary_correct += int(correct)
        elif isinstance(event, EpochEvent):
            report.epochs.append(event)
        elif isinstance(event, QueueEvent):
            if event.phase == PHASE_ROI:
                queue_hist.observe(event.queue_delay)
        elif isinstance(event, MigrationEvent):
            if event.phase == PHASE_ROI:
                report.migrations += 1
                report.migration_cycles_total += 2 * event.one_way_latency
        elif isinstance(event, RequestEvent):
            if event.phase == PHASE_ROI:
                latency_acc.record(
                    event.queue_cycles, event.migration_cycles,
                    event.execution_cycles,
                )
    report.queue_histogram = queue_hist
    if len(latency_acc):
        report.latency = latency_acc.snapshot()
    logger.debug(
        "report built from %s: %d ROI decisions, %d epochs, reconciled=%s",
        path, report.roi_decisions, len(report.epochs), report.reconciled,
    )
    return report
