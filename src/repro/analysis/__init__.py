"""Analysis helpers: metrics arithmetic, table rendering, run reports."""

from repro.analysis.metrics import (
    arithmetic_mean,
    geometric_mean,
    normalized,
    percent,
    speedup_summary,
)
from repro.analysis.report import RunReport, build_report, load_run_trace
from repro.analysis.tables import render_bars, render_series, render_table

__all__ = [
    "RunReport",
    "arithmetic_mean",
    "build_report",
    "geometric_mean",
    "load_run_trace",
    "normalized",
    "percent",
    "render_bars",
    "render_series",
    "render_table",
    "speedup_summary",
]
