"""Analysis helpers: metrics arithmetic and paper-style table rendering."""

from repro.analysis.metrics import (
    arithmetic_mean,
    geometric_mean,
    normalized,
    percent,
    speedup_summary,
)
from repro.analysis.tables import render_bars, render_series, render_table

__all__ = [
    "arithmetic_mean",
    "geometric_mean",
    "normalized",
    "percent",
    "render_bars",
    "render_series",
    "render_table",
    "speedup_summary",
]
