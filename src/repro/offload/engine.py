"""The off-loading execution engine.

Drives one workload trace through the policy + migration + memory stack
and produces a :class:`~repro.sim.stats.SimulationStats`.  The engine
owns the simulation's *fairness discipline*: the trace generator's random
streams are consumed in an order independent of policy decisions (events
are generated, and each invocation's reference stream drawn, before the
off-load decision takes effect), so runs that differ only in policy or
migration latency replay identical workloads.

Topology: ``num_user_cores`` user cores plus one dedicated OS core, each
with private L1/L2, all coherent through one directory.  The paper's
baseline (everything on one core) is the :class:`NeverOffload` policy —
the OS core then sits idle and its untouched caches cannot influence the
user core, faithfully reducing the system to a uni-processor with a
single L2.

With several user cores (Section V.C) the engine interleaves cores by
local time and serialises their off-load requests through the
:class:`~repro.offload.oscore.OSCoreQueue`, which is the only channel by
which user cores interact (their working sets are disjoint by
construction, as separate workload threads).
"""

from __future__ import annotations

import logging
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.astate import astate_hash
from repro.core.policies import OffloadPolicy
from repro.core.threshold import DynamicThresholdController
from repro.cpu.branch import BranchInterferenceModel
from repro.cpu.core import InOrderCore
from repro.cpu.tlb import TranslationBuffer
from repro.errors import SimulationError
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.bus import NULL_BUS, TraceBus
from repro.obs.events import (
    PHASE_ROI,
    PHASE_WARMUP,
    DecisionEvent,
    MigrationEvent,
    QueueEvent,
    RequestEvent,
)
from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_PROFILER, SpanProfiler
from repro.offload.migration import MigrationModel
from repro.offload.oscore import OsCorePool
from repro.service.arrivals import ArrivalSchedule
from repro.service.latency import LatencyAccumulator, LatencyStats
from repro.sim.config import SimulatorConfig
from repro.sim.stats import CoreStats, SimulationStats
from repro.workloads.base import OSInvocation, UserSegment, WorkloadSpec
from repro.workloads.generator import TraceEvent, TraceGenerator

logger = logging.getLogger(__name__)

USER_MODE = 0
OS_MODE = 1

#: Fixed histogram boundaries (cycles) for OS-core queue delays; chosen
#: to straddle the paper's Section V.C landmarks (1,348-cycle average at
#: two user cores, >25,000 at four).
QUEUE_DELAY_BUCKETS = (0, 50, 100, 250, 500, 1000, 2500, 5000, 25000, 100000)

#: Fixed histogram boundaries (instructions) for OS invocation lengths;
#: aligned with the paper's Figure 4 threshold grid.
RUN_LENGTH_BUCKETS = (10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000)

#: Fixed histogram boundaries (cycles) for end-to-end request latency in
#: open-loop service mode; spans sub-queue-delay requests up to the
#: saturation-cliff tail.
LATENCY_BUCKETS = (
    100, 250, 500, 1000, 2500, 5000, 10000, 25000, 100000, 1000000,
)


class _CoreContext:
    """Per-user-core simulation state."""

    __slots__ = (
        "index",
        "node_id",
        "core",
        "generator",
        "events",
        "branch",
        "tlb",
        "executed",
        "done",
    )

    def __init__(
        self,
        index: int,
        node_id: int,
        core: InOrderCore,
        generator: TraceGenerator,
        events: Iterator[TraceEvent],
        branch: Optional[BranchInterferenceModel],
        tlb: Optional[TranslationBuffer],
    ):
        self.index = index
        self.node_id = node_id
        self.core = core
        self.generator = generator
        self.events = events
        self.branch = branch
        self.tlb = tlb
        self.executed = 0
        self.done = False


class OffloadEngine:
    """Executes one (workload, policy, migration, config) combination."""

    #: Whether this engine class can honour ``engine="columnar"``.
    _SUPPORTS_COLUMNAR = True

    def __init__(
        self,
        spec: WorkloadSpec,
        policy: OffloadPolicy,
        migration: MigrationModel,
        config: SimulatorConfig,
        controller: Optional[DynamicThresholdController] = None,
        bus: Optional[TraceBus] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace_store: Optional[Any] = None,
        profiler: Optional[SpanProfiler] = None,
        arrivals: Optional[ArrivalSchedule] = None,
    ):
        self.spec = spec
        self.policy = policy
        self.migration = migration
        self.config = config
        self.controller = controller
        # Duck-typed repro.cache.TraceStore (or None): the engine only
        # asks it for trace sources and priming events, so it stays
        # ignorant of cache keys and storage.
        self._trace_store = trace_store
        self.bus = bus if bus is not None else NULL_BUS
        self.metrics = metrics
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        # The columnar engine needs the single-threaded event loop (it
        # precomputes one dense-key stream per context); subclasses that
        # schedule differently (SMT) clear _SUPPORTS_COLUMNAR and run
        # the batched engine instead — bit-identical, just not columnar.
        self._columnar = (
            config.engine == "columnar" and type(self)._SUPPORTS_COLUMNAR
        )
        self._batched = (
            config.engine == "batched"
            or (config.engine == "columnar" and not self._columnar)
        )
        # Span names are fixed at construction: generation time is
        # attributed to replay vs. regeneration by store presence
        # (columnar always replays materialized traces), and memory time
        # to the engine variant actually running.
        self._gen_span = (
            names.SPAN_GEN_REPLAY
            if trace_store is not None or self._columnar
            else names.SPAN_GEN_GENERATE
        )
        if self._columnar:
            self._mem_span = names.SPAN_MEM_COLUMNAR
        elif self._batched:
            self._mem_span = names.SPAN_MEM_BATCHED
        else:
            self._mem_span = names.SPAN_MEM_SCALAR
        if controller is not None and controller.bus is NULL_BUS:
            controller.bus = self.bus
        # Confidence introspection for decision events: present on the
        # HI policy's run-length predictor, absent elsewhere.
        self._confidence_of = getattr(
            getattr(policy, "predictor", None), "confidence_for", None
        )
        self._phase_label = PHASE_WARMUP
        self._open_loop = config.service.open_loop
        if metrics is not None:
            self._queue_hist = metrics.histogram(
                names.QUEUE_DELAY_CYCLES, QUEUE_DELAY_BUCKETS,
                help="OS-core queue delay per off-loaded invocation",
                exist_ok=True,
            )
            self._length_hist = metrics.histogram(
                names.OS_INVOCATION_LENGTH_INSTRUCTIONS, RUN_LENGTH_BUCKETS,
                help="Actual run length per decided OS invocation",
                exist_ok=True,
            )
        else:
            self._queue_hist = None
            self._length_hist = None
        if metrics is not None and self._open_loop:
            self._latency_hist = metrics.histogram(
                names.REPRO_SERVICE_LATENCY_CYCLES, LATENCY_BUCKETS,
                help="End-to-end request latency per decided OS entry",
                exist_ok=True,
            )
        else:
            self._latency_hist = None

        n_user = config.num_user_cores
        labels = [f"user{i}" for i in range(n_user)] + ["os"]
        self.stats = SimulationStats(cores=[CoreStats() for _ in range(n_user)])
        energy = self.stats.energy if config.track_energy else None
        self.hierarchy = MemoryHierarchy(
            config.effective_memory(), labels, self.stats.coherence, energy,
            with_icache=config.enable_icache,
        )
        self.stats.l1 = self.hierarchy.l1_stats
        self.stats.l1i = self.hierarchy.l1i_stats
        self.stats.l2 = self.hierarchy.l2_stats
        # sim.mem.miss span: the hierarchy accumulates miss-path time
        # against the profiler's clock (injected — the D-rules keep
        # wall-clock reads out of memory code), and _add_mem_span
        # subtracts each fold's delta from the engine's memory span so
        # sibling self-times stay a partition of replay time.
        self._miss_ns_seen = 0
        if self.profiler.enabled:
            self.hierarchy.miss_timer = self.profiler.t
        self.os_node_id = n_user
        service = config.service
        self.oscore = OsCorePool(
            self.stats.offload,
            cores=service.os_cores,
            contexts=config.os_core_contexts,
            dispatch=service.dispatch,
            admission=service.admission,
            admission_backlog_cycles=service.admission_backlog_cycles,
        )
        self._admission_enabled = service.admission != "none"
        # Open-loop service mode: a per-thread arrival schedule gates
        # when decided OS entries may begin, and a latency accumulator
        # collects the queue/migration/execution decomposition of every
        # request.  ``_clock_base`` carries each core's pre-ROI elapsed
        # time across the warm-up counter reset so arrival timestamps
        # stay absolute and monotone.
        if self._open_loop:
            self.arrivals: Optional[ArrivalSchedule] = (
                arrivals if arrivals is not None
                else ArrivalSchedule(service, seed=config.seed, threads=n_user)
            )
            self.latency: Optional[LatencyAccumulator] = LatencyAccumulator()
        else:
            self.arrivals = None
            self.latency = None
        self._clock_base = [0] * n_user
        self.os_branch = BranchInterferenceModel() if config.enable_branch_model else None
        self.os_tlb = (
            TranslationBuffer(config.core.tlb_entries) if config.enable_tlb else None
        )

        # Let the run's predictor statistics surface in the run's stats.
        predictor = getattr(policy, "predictor", None)
        if predictor is not None:
            self.stats.predictor = predictor.stats

        budget_per_core = config.profile.scaled_warmup + config.profile.scaled_roi
        # Generate with slack; phase accounting stops the run.
        slack_budget = budget_per_core * 2 + 1
        columnar_sources = (
            self._columnar_sources(slack_budget) if self._columnar else None
        )
        self.contexts: List[_CoreContext] = []
        for index in range(n_user):
            if columnar_sources is not None:
                generator = columnar_sources[index]
            elif trace_store is not None:
                generator = trace_store.trace_source(
                    spec, config, index, slack_budget
                )
            else:
                generator = TraceGenerator(
                    spec, config.profile, seed=config.seed, thread_id=index
                )
            core = InOrderCore(config.core, self.stats.cores[index])
            self.contexts.append(
                _CoreContext(
                    index=index,
                    node_id=index,
                    core=core,
                    generator=generator,
                    events=generator.events(slack_budget),
                    branch=BranchInterferenceModel() if config.enable_branch_model else None,
                    tlb=TranslationBuffer(config.core.tlb_entries) if config.enable_tlb else None,
                )
            )
        self.threshold_trace: List[Tuple[int, int]] = []
        self._epoch_executed = 0
        self._epoch_l2_snapshot = (0, 0)
        self._epoch_settled_snapshot: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # columnar setup
    # ------------------------------------------------------------------

    def _columnar_sources(self, slack_budget: int) -> List[Any]:
        """Materialize every context's trace and columnarize the caches.

        The columnar engine always replays materialized traces — it
        needs each thread's whole flattened reference stream up front to
        build the run's line *universe* (the sorted distinct lines the
        run will ever touch).  Per-line L1 state then lives in flat
        arrays indexed by dense keys, and each thread's key stream is
        translated once here — or, when a trace store is attached,
        loaded from its persisted columnar bundle (the derived universe
        and key arrays are content-addressed alongside the traces
        themselves).  Per event, the keys are then just a slice.
        Replay is bit-identical to live generation (the trace-cache
        contract), so this changes no result — only representation.
        """
        # Deferred import: the engine only depends on repro.cache when
        # actually running columnar, mirroring the duck-typed store.
        from repro.cache.tracestore import (
            ColumnarReplayTrace,
            materialize_trace_data,
        )
        from repro.memory.columnar import build_universe, translate_keys

        datas = []
        for index in range(self.config.num_user_cores):
            data = None
            if self._trace_store is not None:
                try:
                    data = self._trace_store.trace_data(
                        self.spec, self.config, index, slack_budget
                    )
                except Exception as error:
                    logger.warning(
                        "trace cache bypassed for %s thread %d: %r",
                        self.spec.name, index, error,
                    )
            if data is None:
                data = materialize_trace_data(
                    self.spec, self.config, index, slack_budget
                )
            datas.append(data)
        bundle = None
        if self._trace_store is not None:
            try:
                bundle = self._trace_store.columnar_bundle(
                    self.spec, self.config, datas, slack_budget
                )
            except Exception as error:
                logger.warning(
                    "columnar-bundle cache bypassed for %s: %r",
                    self.spec.name, error,
                )
        if bundle is None:
            streams = [data.data_lines for data in datas]
            streams.extend(
                data.code_lines
                for data in datas
                if data.code_lines is not None
            )
            universe = build_universe(streams)
            data_keys = [
                translate_keys(universe, data.data_lines, data.data_writes)
                for data in datas
            ]
            code_keys = [
                translate_keys(universe, data.code_lines)
                if data.code_lines is not None
                else None
                for data in datas
            ]
        else:
            universe = bundle.universe
            data_keys = bundle.data_keys
            code_keys = bundle.code_keys
        self.hierarchy.enable_columnar(universe)
        return [
            ColumnarReplayTrace(data, data_keys[index], code_keys[index])
            for index, data in enumerate(datas)
        ]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self) -> SimulationStats:
        """Prime, warm up, then simulate the region of interest."""
        profile = self.config.profile
        logger.debug(
            "run start: workload=%s policy=%s latency=%d cores=%d",
            self.spec.name, self.policy.name,
            self.migration.one_way_latency, self.config.num_user_cores,
        )
        with self.profiler.span(names.SPAN_SIM_PRIME):
            self._prime_policy(self.config.policy_priming_invocations)
        self._phase_label = PHASE_WARMUP
        with self.profiler.span(names.SPAN_SIM_WARMUP):
            warm_instructions, warm_os = self._run_phase(
                profile.scaled_warmup, epochs=False
            )
        # The counter reset zeroes each core's local clock; fold the
        # elapsed warm-up time into the absolute-clock bases first so
        # open-loop arrival timestamps never run backwards.
        for ctx in self.contexts:
            self._clock_base[ctx.index] += ctx.core.now
        self.stats.reset_counters()
        if self.latency is not None:
            self.latency.reset()
        self._phase_label = PHASE_ROI
        if self.controller is not None:
            priv_fraction = warm_os / warm_instructions if warm_instructions else 0.0
            self.controller.begin(priv_fraction)
            self._apply_threshold()
            self._snapshot_epoch()
        with self.profiler.span(names.SPAN_SIM_ROI):
            self._run_phase(profile.scaled_roi, epochs=self.controller is not None)
        self.stats.energy.core_cycles = (
            sum(c.busy_cycles for c in self.stats.cores)
            + self.stats.os_core.busy_cycles
        )
        self._publish_metrics()
        logger.debug(
            "run done: throughput=%.4f offloads=%d/%d",
            self.stats.throughput, self.stats.offload.offloads,
            self.stats.offload.os_entries,
        )
        return self.stats

    # ------------------------------------------------------------------
    # phase machinery
    # ------------------------------------------------------------------

    def _prime_policy(self, invocations: int) -> None:
        """Train learning policies on an invocation stream before timing.

        Stands in for the bulk of the paper's 50 M-instruction warm-up:
        the predictor (HI) and the software shim's history (DI) reach
        steady state without paying for memory simulation.  A dedicated
        generator seed keeps the timed trace untouched.
        """
        if invocations <= 0:
            return
        if self._trace_store is not None:
            events: Iterator[TraceEvent] = self._trace_store.priming_events(
                self.spec, self.config
            )
        else:
            generator = TraceGenerator(
                self.spec, self.config.profile, seed=self.config.seed + 7919
            )
            events = generator.events(2 ** 62)
        include_traps = self.config.include_window_traps
        seen = 0
        for event in events:
            if not isinstance(event, OSInvocation):
                continue
            if event.is_window_trap and not include_traps:
                continue
            decision = self.policy.decide(event)
            self.policy.observe(event, decision)
            seen += 1
            if seen >= invocations:
                break

    def _run_phase(self, budget: int, epochs: bool) -> Tuple[int, int]:
        """Interleave cores until each has executed ``budget`` instructions.

        Returns ``(total_instructions, os_instructions)`` executed in the
        phase across all cores.
        """
        if budget <= 0:
            return 0, 0
        total = 0
        os_total = 0
        for ctx in self.contexts:
            ctx.executed = 0
            ctx.done = False
        active = [ctx for ctx in self.contexts]
        while active:
            ctx = min(active, key=lambda c: c.core.now)
            event = next(ctx.events, None)
            if event is None:
                raise SimulationError(
                    "trace generator exhausted before the phase budget; "
                    "increase the generation slack"
                )
            executed = self._execute(ctx, event)
            ctx.executed += executed
            total += executed
            if isinstance(event, OSInvocation):
                os_total += event.length
            if epochs:
                self._epoch_executed += executed
                self._maybe_end_epoch()
            if ctx.executed >= budget:
                ctx.done = True
                active = [c for c in self.contexts if not c.done]
        return total, os_total

    def _execute(self, ctx: _CoreContext, event: TraceEvent) -> int:
        if isinstance(event, UserSegment):
            self._run_user_segment(ctx, event)
            return event.instructions
        self._run_invocation(ctx, event)
        return event.length

    # ------------------------------------------------------------------
    # event execution
    # ------------------------------------------------------------------

    def _add_mem_span(self, prof: SpanProfiler, elapsed: int) -> None:
        """Fold one replay's elapsed time into the memory spans.

        The miss-path nanoseconds the hierarchy accumulated since the
        last fold go to ``sim.mem.miss``; the remainder goes to the
        engine-variant span.  Together the two partition replay time,
        so ``repro profile`` shows the fast-path/miss-path Amdahl split
        directly.
        """
        hierarchy = self.hierarchy
        miss = hierarchy.miss_ns - self._miss_ns_seen
        if miss:
            self._miss_ns_seen = hierarchy.miss_ns
            prof.add_ns(names.SPAN_MEM_MISS, miss)
            elapsed -= miss
        prof.add_ns(self._mem_span, elapsed)

    def _run_user_segment(self, ctx: _CoreContext, segment: UserSegment) -> None:
        prof = self.profiler
        t0 = prof.t() if prof.enabled else 0
        lines, writes = ctx.generator.user_accesses(segment.instructions)
        code_lines = (
            ctx.generator.user_code_accesses(segment.instructions)
            if self.config.enable_icache
            else None
        )
        keys = ctx.generator.data_keys() if self._columnar else None
        if prof.enabled:
            t1 = prof.t()
            prof.add_ns(self._gen_span, t1 - t0)
        stalls = self._replay(ctx.node_id, lines, writes, ctx.tlb, keys)
        if code_lines is not None:
            stalls += self._replay_code(
                ctx.node_id, code_lines,
                ctx.generator.code_keys() if self._columnar else None,
            )
        if prof.enabled:
            self._add_mem_span(prof, prof.t() - t1)
        if ctx.branch is not None:
            stalls += ctx.branch.execute(segment.instructions, USER_MODE)
        ctx.core.retire(segment.instructions, stalls)

    def _run_invocation(self, ctx: _CoreContext, invocation: OSInvocation) -> None:
        prof = self.profiler
        offload_stats = self.stats.offload
        offload_stats.os_instructions += invocation.length
        if invocation.is_window_trap and not self.config.include_window_traps:
            # The paper's graphs treat register-window traps the way an
            # x86-style ISA would: in-place privileged work, never an
            # off-load candidate (Section IV).
            t0 = prof.t() if prof.enabled else 0
            lines, writes = ctx.generator.os_accesses(invocation)
            code_lines = (
                ctx.generator.os_code_accesses(invocation)
                if self.config.enable_icache
                else None
            )
            keys = ctx.generator.data_keys() if self._columnar else None
            if prof.enabled:
                t1 = prof.t()
                prof.add_ns(self._gen_span, t1 - t0)
            stalls = self._replay(ctx.node_id, lines, writes, ctx.tlb, keys)
            if code_lines is not None:
                stalls += self._replay_code(
                    ctx.node_id, code_lines,
                    ctx.generator.code_keys() if self._columnar else None,
                )
            if prof.enabled:
                self._add_mem_span(prof, prof.t() - t1)
            if ctx.branch is not None:
                stalls += ctx.branch.execute(invocation.length, OS_MODE)
            ctx.core.retire(invocation.length, stalls)
            return
        offload_stats.os_entries += 1
        # Open-loop gating: the decided OS entry is a service request
        # that may not begin before its scheduled arrival.  An early
        # core idles until the arrival; a late core has a backlog — the
        # time the request already spent waiting for the core — which
        # counts toward its queueing latency.
        backlog = 0
        request_arrival = 0
        queue_before = migration_before = started_at = 0
        if self.latency is not None:
            request_arrival = self.arrivals.next_arrival(ctx.index)
            now_abs = self._clock_base[ctx.index] + ctx.core.now
            if request_arrival > now_abs:
                ctx.core.idle(request_arrival - now_abs)
            else:
                backlog = now_abs - request_arrival
            core_stats = ctx.core.stats
            queue_before = core_stats.queue_cycles
            migration_before = core_stats.migration_cycles
            started_at = ctx.core.now
        t0 = prof.t() if prof.enabled else 0
        decision = self.policy.decide(invocation)
        if prof.enabled:
            prof.add_ns(names.SPAN_POLICY_DECIDE, prof.t() - t0)
        if decision.overhead_cycles:
            ctx.core.pay_decision(decision.overhead_cycles)
        # The reference streams are drawn before the decision takes
        # effect so RNG consumption is identical across policies.
        t0 = prof.t() if prof.enabled else 0
        lines, writes = ctx.generator.os_accesses(invocation)
        code_lines = (
            ctx.generator.os_code_accesses(invocation)
            if self.config.enable_icache
            else None
        )
        keys = ctx.generator.data_keys() if self._columnar else None
        code_keys = (
            ctx.generator.code_keys()
            if self._columnar and code_lines is not None
            else None
        )
        if prof.enabled:
            prof.add_ns(self._gen_span, prof.t() - t0)

        # Admission control (open-loop pools): a rejected invocation
        # retires on the requesting core instead.  Safe to ask here —
        # the reference streams above never advance core time, so the
        # probe sees the same arrival instant ``serve`` would.
        do_offload = decision.offload
        if do_offload and self._admission_enabled:
            probe = (
                self._clock_base[ctx.index] + ctx.core.now
                if self._open_loop else ctx.core.now
            )
            if not self.oscore.admit(probe, thread=ctx.index):
                offload_stats.admission_drops += 1
                do_offload = False
        migration_cycles = 0
        if do_offload:
            offload_stats.offloads += 1
            offload_stats.offloaded_instructions += invocation.length
            one_way = self.migration.one_way_latency
            t0 = prof.t() if prof.enabled else 0
            stalls = self._replay(
                self.os_node_id, lines, writes, self.os_tlb, keys
            )
            if code_lines is not None:
                stalls += self._replay_code(self.os_node_id, code_lines, code_keys)
            if prof.enabled:
                self._add_mem_span(prof, prof.t() - t0)
            if self.os_branch is not None:
                stalls += self.os_branch.execute(invocation.length, OS_MODE)
            # The OS core is occupied for the migration-in window too: it
            # is interrupted, saves its state, and reads the migrating
            # thread's architected state (Section II) — so its service
            # window is receive + execute, and that is also what queued
            # requests wait behind.
            service = (
                one_way
                + int(invocation.length * self.config.core.base_cpi)
                + stalls
            )
            # Closed-loop runs keep the legacy local-clock arrival (the
            # pool's horizons persist across the warm-up reset exactly
            # as the single queue's always have); open-loop runs use
            # absolute time so arrivals and horizons share one clock.
            if self._open_loop:
                arrival = self._clock_base[ctx.index] + ctx.core.now
            else:
                arrival = ctx.core.now
            t0 = prof.t() if prof.enabled else 0
            start, queue_delay = self.oscore.serve(
                arrival, service, thread=ctx.index
            )
            if prof.enabled:
                prof.add_ns(names.SPAN_QUEUE, prof.t() - t0)
            self.stats.os_core.instructions += invocation.length
            self.stats.os_core.busy_cycles += service
            finish = start + service + one_way
            wait = finish - arrival
            migration_cycles = 2 * one_way
            ctx.core.wait_for_offload(
                wait, queue_cycles=queue_delay, migration_cycles=migration_cycles
            )
            if self.bus.enabled:
                self.bus.emit(MigrationEvent(
                    core=ctx.index, phase=self._phase_label,
                    vector=invocation.vector, length=invocation.length,
                    one_way_latency=one_way, service_cycles=service,
                ))
                self.bus.emit(QueueEvent(
                    core=ctx.index, phase=self._phase_label,
                    arrival=arrival, start=start, queue_delay=queue_delay,
                    service_cycles=service,
                ))
            if self._queue_hist is not None:
                self._queue_hist.observe(queue_delay)
        else:
            t0 = prof.t() if prof.enabled else 0
            stalls = self._replay(ctx.node_id, lines, writes, ctx.tlb, keys)
            if code_lines is not None:
                stalls += self._replay_code(ctx.node_id, code_lines, code_keys)
            if prof.enabled:
                self._add_mem_span(prof, prof.t() - t0)
            if ctx.branch is not None:
                stalls += ctx.branch.execute(invocation.length, OS_MODE)
            ctx.core.retire(invocation.length, stalls)
        if self.latency is not None:
            core_stats = ctx.core.stats
            queue = backlog + (core_stats.queue_cycles - queue_before)
            migration = core_stats.migration_cycles - migration_before
            total = backlog + (ctx.core.now - started_at)
            execution = total - queue - migration
            total = self.latency.record(queue, migration, execution)
            if self._latency_hist is not None:
                self._latency_hist.observe(total)
            if self.bus.enabled:
                self.bus.emit(RequestEvent(
                    core=ctx.index, phase=self._phase_label,
                    arrival=request_arrival,
                    queue_cycles=queue, migration_cycles=migration,
                    execution_cycles=execution, total_cycles=total,
                    offloaded=do_offload,
                ))
        # Emit before observe() so the recorded confidence is the one
        # that backed this decision, not the post-training value.
        if self.bus.enabled:
            self._emit_decision(ctx.index, invocation, decision, migration_cycles)
        if self._length_hist is not None:
            self._length_hist.observe(invocation.length)
        t0 = prof.t() if prof.enabled else 0
        self.policy.observe(invocation, decision)
        if prof.enabled:
            prof.add_ns(names.SPAN_POLICY_DECIDE, prof.t() - t0)

    def _emit_decision(
        self,
        core_index: int,
        invocation: OSInvocation,
        decision,
        migration_cycles: int,
    ) -> None:
        """Build and emit one :class:`DecisionEvent` (bus already enabled)."""
        confidence = (
            self._confidence_of(invocation.astate)
            if self._confidence_of is not None
            else -1
        )
        self.bus.emit(DecisionEvent(
            core=core_index,
            phase=self._phase_label,
            vector=invocation.vector,
            name=invocation.name,
            astate=astate_hash(invocation.astate),
            predicted=decision.predicted_length,
            actual=invocation.length,
            confidence=confidence,
            threshold=self.policy.threshold,
            offload=decision.offload,
            overhead_cycles=decision.overhead_cycles,
            migration_cycles=migration_cycles,
        ))

    def _publish_metrics(self) -> None:
        """Fold the run's end-of-run counters into the metrics registry.

        Counters accumulate across runs sharing one registry (sweeps);
        gauges reflect the most recent run.
        """
        registry = self.metrics
        if registry is None:
            return
        stats = self.stats

        def add(name: str, amount: int, help: str) -> None:
            registry.counter(name, help, exist_ok=True).inc(amount)

        def set_gauge(name: str, value: float, help: str) -> None:
            registry.gauge(name, help, exist_ok=True).set(value)

        offload = stats.offload
        add(names.OS_ENTRIES_TOTAL, offload.os_entries,
            "Decided OS entries in the region of interest")
        add(names.OFFLOADS_TOTAL, offload.offloads,
            "OS entries off-loaded to the OS core")
        add(names.OS_INSTRUCTIONS_TOTAL, offload.os_instructions,
            "Privileged instructions simulated")
        add(names.OFFLOADED_INSTRUCTIONS_TOTAL,
            offload.offloaded_instructions,
            "Privileged instructions executed on the OS core")
        add(names.INSTRUCTIONS_TOTAL, stats.total_instructions,
            "Instructions retired across all cores")
        add(names.PREDICTOR_PREDICTIONS_TOTAL, stats.predictor.predictions,
            "Run-length predictions issued")
        add(names.PREDICTOR_GLOBAL_FALLBACKS_TOTAL,
            stats.predictor.global_fallbacks,
            "Predictions served by the global fallback")
        add(names.COHERENCE_C2C_TRANSFERS_TOTAL,
            stats.coherence.cache_to_cache_transfers,
            "Cache-to-cache transfers")
        add(names.COHERENCE_INVALIDATIONS_TOTAL,
            stats.coherence.invalidations, "Coherence invalidations")
        set_gauge(names.THROUGHPUT_IPC, stats.throughput,
                  "Aggregate instructions per wall cycle of the last run")
        set_gauge(names.OFFLOAD_RATE, offload.offload_rate,
                  "Fraction of decided entries off-loaded in the last run")
        set_gauge(names.MEAN_QUEUE_DELAY_CYCLES, offload.mean_queue_delay,
                  "Mean OS-core queue delay of the last run")
        set_gauge(names.OS_CORE_BUSY_FRACTION,
                  stats.os_core_time_fraction(),
                  "Fraction of wall time the OS core was busy")
        set_gauge(names.PREDICTOR_BINARY_ACCURACY,
                  stats.predictor.binary_accuracy,
                  "Off-load decision accuracy at the active threshold")
        set_gauge(names.MEAN_L2_HIT_RATE, stats.mean_l2_hit_rate(),
                  "Averaged L2 hit rate (dynamic-N feedback metric)")
        snapshot = self.latency_snapshot()
        if snapshot is not None:
            add(names.REPRO_SERVICE_REQUESTS_TOTAL, snapshot.requests,
                "Open-loop service requests completed")
            add(names.REPRO_SERVICE_DROPS_TOTAL, snapshot.drops,
                "Off-loads rejected by admission control")
            add(names.REPRO_SERVICE_QUEUE_CYCLES_TOTAL,
                snapshot.queue_cycles,
                "Request cycles spent queued (backlog + OS-core queue)")
            add(names.REPRO_SERVICE_MIGRATION_CYCLES_TOTAL,
                snapshot.migration_cycles,
                "Request cycles spent migrating to/from the OS core")
            add(names.REPRO_SERVICE_EXECUTION_CYCLES_TOTAL,
                snapshot.execution_cycles,
                "Request cycles spent executing (incl. decision overhead)")
            set_gauge(names.REPRO_SERVICE_LATENCY_P50_CYCLES, snapshot.p50,
                      "Median request latency of the last run")
            set_gauge(names.REPRO_SERVICE_LATENCY_P99_CYCLES, snapshot.p99,
                      "99th-percentile request latency of the last run")
            set_gauge(names.REPRO_SERVICE_LATENCY_P999_CYCLES, snapshot.p999,
                      "99.9th-percentile request latency of the last run")
            set_gauge(names.REPRO_SERVICE_OS_CORES, self.oscore.cores,
                      "OS cores in the off-load pool of the last run")

    def latency_snapshot(self) -> Optional[LatencyStats]:
        """The run's request-latency statistics (``None`` closed-loop)."""
        if self.latency is None:
            return None
        return self.latency.snapshot(
            drops=self.stats.offload.admission_drops
        )

    def _replay(
        self,
        node_id: int,
        lines: np.ndarray,
        writes: np.ndarray,
        tlb: Optional[TranslationBuffer],
        keys: Optional[np.ndarray] = None,
    ) -> int:
        """Replay a reference stream through the hierarchy; sum the stalls.

        The batched engine hands the whole array to
        :meth:`MemoryHierarchy.access_batch` (and the TLB's batch
        translator).  Stall totals, counters, and structure states match
        the scalar loop exactly; the only reordering is that all TLB
        translations happen before the memory accesses instead of
        interleaved with them, which is unobservable — the two
        structures share no state and nothing reads counters mid-event.
        The columnar engine additionally receives ``keys``, the event's
        precomputed dense access keys (see
        :meth:`MemoryHierarchy.access_batch_columnar`).
        """
        if self._columnar:
            total = self.hierarchy.access_batch_columnar(
                node_id, lines, writes, keys
            )
            if tlb is not None:
                total += tlb.access_batch(lines)
            return total
        if self._batched:
            total = self.hierarchy.access_batch(node_id, lines, writes)
            if tlb is not None:
                total += tlb.access_batch(lines)
            return total
        access = self.hierarchy.access
        total = 0
        # memoryview iteration yields native Python ints/bools like
        # ``.tolist()`` does, without building the intermediate lists.
        line_view = memoryview(lines)
        write_view = memoryview(writes)
        if tlb is None:
            for line, is_write in zip(line_view, write_view):
                total += access(node_id, line, is_write)
        else:
            translate = tlb.access_line
            for line, is_write in zip(line_view, write_view):
                total += translate(line) + access(node_id, line, is_write)
        return total

    def _replay_code(
        self,
        node_id: int,
        lines: np.ndarray,
        keys: Optional[np.ndarray] = None,
    ) -> int:
        """Replay an instruction-fetch stream through the L1I path."""
        if self._columnar:
            return self.hierarchy.access_code_batch_columnar(
                node_id, lines, keys
            )
        if self._batched:
            return self.hierarchy.access_code_batch(node_id, lines)
        access_code = self.hierarchy.access_code
        total = 0
        for line in memoryview(lines):
            total += access_code(node_id, line)
        return total

    # ------------------------------------------------------------------
    # dynamic-N epochs
    # ------------------------------------------------------------------

    def _apply_threshold(self) -> None:
        assert self.controller is not None
        self.policy.threshold = self.controller.threshold
        self.threshold_trace.append(
            (self._total_executed(), self.controller.threshold)
        )

    def _total_executed(self) -> int:
        return sum(ctx.executed for ctx in self.contexts)

    def _l2_counters(self) -> Tuple[int, int]:
        accesses = sum(s.accesses for s in self.stats.l2.values())
        return accesses, self.hierarchy.dram.fetches

    def _snapshot_epoch(self) -> None:
        self._epoch_l2_snapshot = self._l2_counters()
        self._epoch_settled_snapshot = None
        self._epoch_executed = 0

    def _maybe_end_epoch(self) -> None:
        """Feed the controller the finished epoch's L2 hit rate.

        Two departures from a naive per-epoch counter read, both needed
        because our scaled epochs are only a few cache turnovers long
        (the paper's 25 M-instruction epochs dwarf its cache warm-up):

        - the rate counts only misses serviced by *memory*: an L2 miss
          filled by a peer cache costs a fraction of a DRAM fetch, and
          real L2-miss counter events distinguish the two.  Counting peer
          fills as misses would punish exactly the coherence traffic that
          profitable off-loading necessarily creates;
        - the first half of each epoch is a settling window — after a
          threshold change the caches hold the previous configuration's
          working sets — so the rate is measured over the second half.
        """
        controller = self.controller
        if controller is None:
            return
        if (
            self._epoch_settled_snapshot is None
            and self._epoch_executed >= controller.epoch_length // 2
        ):
            self._epoch_settled_snapshot = self._l2_counters()
        if self._epoch_executed < controller.epoch_length:
            return
        base = (
            self._epoch_settled_snapshot
            if self._epoch_settled_snapshot is not None
            else self._epoch_l2_snapshot
        )
        accesses_now, fetches_now = self._l2_counters()
        accesses = accesses_now - base[0]
        memory_misses = fetches_now - base[1]
        rate = 1.0 - memory_misses / accesses if accesses else 1.0
        prof = self.profiler
        t0 = prof.t() if prof.enabled else 0
        controller.on_epoch_end(rate)
        self._apply_threshold()
        self._snapshot_epoch()
        if prof.enabled:
            prof.add_ns(names.SPAN_POLICY_DECIDE, prof.t() - t0)
