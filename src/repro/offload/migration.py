"""Thread-migration latency design points.

The paper is deliberately agnostic about the off-loading mechanism
(process migration, RPC, in-kernel message passing) and parameterises the
one-way migration latency instead, anchoring two design points:

- **conservative** — ~5,000 cycles: measured thread-migration time of an
  unmodified Linux 2.6.18 kernel (interrupt the user core, spill the
  architected register state to memory, interrupt the OS core, reload);
- **aggressive** — ~100 cycles: Brown and Tullsen's shared-thread
  hardware state machine for book-keeping and thread scheduling [9];

with Strong et al. [22] ("just below 3,000 cycles") in between, and a
sweep over {0, 100, 500, 1,000, 5,000} in Figure 4.

Any data the migrated thread needs on the other core moves through the
coherence protocol, so the migration model charges *control transfer*
latency only — the cache-to-cache traffic is simulated, not estimated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MigrationModel:
    """One off-loading implementation's control-transfer cost."""

    name: str
    one_way_latency: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.one_way_latency < 0:
            raise ConfigurationError("migration latency must be non-negative")

    @property
    def round_trip_latency(self) -> int:
        """Cost of off-loading and returning (two one-way transfers)."""
        return 2 * self.one_way_latency


#: Unmodified Linux 2.6.18 process migration (paper Section II).
CONSERVATIVE = MigrationModel(
    "conservative", 5000, "unmodified Linux 2.6.18 thread migration"
)

#: Strong et al. [22] fast thread switching.
IMPROVED = MigrationModel(
    "improved", 3000, "Strong et al. fast switching of threads between cores"
)

#: Brown & Tullsen [9] hardware-assisted shared-thread switching.
AGGRESSIVE = MigrationModel(
    "aggressive", 100, "Brown & Tullsen shared-thread hardware migration"
)

#: Idealised zero-cost migration (the Figure 4 upper bound).
FREE = MigrationModel("free", 0, "idealised zero-latency migration")


def design_points() -> Tuple[MigrationModel, ...]:
    """The one-way latencies swept in the paper's Figure 4."""
    return (
        FREE,
        AGGRESSIVE,
        MigrationModel("latency-500", 500, "hypothetical 500-cycle migration"),
        MigrationModel("latency-1000", 1000, "hypothetical 1,000-cycle migration"),
        CONSERVATIVE,
    )
