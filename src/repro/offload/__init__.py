"""Off-loading machinery: migration models, OS core queue, engine."""

from repro.offload.engine import OffloadEngine
from repro.offload.smt import SMTOffloadEngine
from repro.offload.migration import (
    AGGRESSIVE,
    CONSERVATIVE,
    FREE,
    IMPROVED,
    MigrationModel,
    design_points,
)
from repro.offload.oscore import OSCoreQueue

__all__ = [
    "AGGRESSIVE",
    "CONSERVATIVE",
    "FREE",
    "IMPROVED",
    "MigrationModel",
    "OSCoreQueue",
    "OffloadEngine",
    "SMTOffloadEngine",
    "design_points",
]
