"""The dedicated OS core's request queue.

The paper's OS core is a normal (non-SMT) core: it serves one off-loaded
invocation at a time, and when a request arrives while it is busy the
requesting user core stalls — the queuing delay measured in Section V.C
(1,348 cycles average with two user cores sharing one OS core; exploding
past 25,000 cycles with four).

Because the paper's conclusion is that "1:1, or possibly 1:N, may be the
appropriate ratio of provisioning OS cores" — with multi-threading the
natural way to stretch one OS core further (its own Section IV notes
server workloads are "best handled by in-order cores with
multi-threading") — the queue optionally models an SMT OS core with
``contexts`` hardware threads: up to ``contexts`` off-loaded invocations
execute concurrently, each context serving FCFS.  The shared-cache
behaviour of concurrent OS work is already captured by the single OS
node all off-loads execute against.

The queue is FCFS in arrival order.  Because user cores only interact
through this queue (their caches are private), simulating it needs only
the per-context ``free_at`` horizons, not a full event calendar.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.service.config import ADMISSION_MODES, DISPATCH_MODES
from repro.sim.stats import OffloadStats


class OSCoreQueue:
    """FCFS service window(s) of the single OS core.

    With ``contexts == 1`` this is the paper's non-SMT OS core; larger
    values model SMT contexts that each run one off-loaded invocation.
    """

    def __init__(self, stats: OffloadStats, contexts: int = 1):
        if contexts < 1:
            raise ConfigurationError("the OS core needs at least one context")
        self.stats = stats
        self.contexts = contexts
        self._free_at: List[int] = [0] * contexts
        self.requests = 0

    @property
    def free_at(self) -> int:
        """Global cycle at which some OS-core context next becomes idle."""
        return min(self._free_at)

    def serve(self, arrival_time: int, service_cycles: int) -> Tuple[int, int]:
        """Admit a request arriving at ``arrival_time``.

        Returns ``(start_time, queue_delay)``: the request starts on the
        earliest-free context and advances that context's busy horizon by
        ``service_cycles``.
        """
        if arrival_time < 0 or service_cycles < 0:
            raise SimulationError("negative time handed to the OS core queue")
        self.requests += 1
        slot = min(range(self.contexts), key=lambda i: self._free_at[i])
        start = max(arrival_time, self._free_at[slot])
        queue_delay = start - arrival_time
        self._free_at[slot] = start + service_cycles
        self.stats.os_core_busy_cycles += service_cycles
        self.stats.queue_delay_total += queue_delay
        self.stats.queue_delay_events += 1
        return start, queue_delay


class OsCorePool:
    """A pool of ``cores`` OS cores, each with ``contexts`` FCFS slots.

    This generalises :class:`OSCoreQueue` toward the paper's closing
    question — "1:1, or possibly 1:N, may be the appropriate ratio of
    provisioning OS cores" — by letting several OS cores share the
    off-load stream, so the Section V.C saturation cliff can be
    attacked and plotted (p99 vs offered load, single core vs pool).

    With ``cores == 1`` the pool is **bit-identical** to
    :class:`OSCoreQueue` under every dispatch policy: one core leaves
    nothing to choose, so slot selection, start times, queue delays and
    statistics all reduce to the legacy queue (pinned by the parity
    golden test and the Hypothesis differential property).

    Dispatch policies (requests never reorder within a policy — the
    pool is driven in simulation order):

    - ``"shard"`` — static assignment: ``thread % cores``;
    - ``"shortest"`` — the core whose earliest slot frees first
      (lowest index on ties); at n=1 this is single-queue FCFS;
    - ``"steal"`` — shard affinity, but when the home core is busy at
      the arrival instant and another core has an idle slot, the
      earliest-free idle core steals the request (cache-affinity
      preserving work stealing).

    The admission hook (:meth:`admit`) is read-only: the engine asks
    before committing an off-load, and a rejected invocation executes
    on the requesting user core instead.
    """

    def __init__(
        self,
        stats: OffloadStats,
        cores: int = 1,
        contexts: int = 1,
        dispatch: str = "shortest",
        admission: str = "none",
        admission_backlog_cycles: int = 0,
    ):
        if cores < 1:
            raise ConfigurationError("the OS-core pool needs at least one core")
        if contexts < 1:
            raise ConfigurationError("each OS core needs at least one context")
        if dispatch not in DISPATCH_MODES:
            raise ConfigurationError(
                f"dispatch must be one of {sorted(DISPATCH_MODES)}, "
                f"got {dispatch!r}"
            )
        if admission not in ADMISSION_MODES:
            raise ConfigurationError(
                f"admission must be one of {sorted(ADMISSION_MODES)}, "
                f"got {admission!r}"
            )
        if admission_backlog_cycles < 0:
            raise ConfigurationError(
                "admission_backlog_cycles must be non-negative"
            )
        self.stats = stats
        self.cores = cores
        self.contexts = contexts
        self.dispatch = dispatch
        self.admission = admission
        self.admission_backlog_cycles = admission_backlog_cycles
        self._free_at: List[List[int]] = [
            [0] * contexts for _ in range(cores)
        ]
        self.requests = 0

    @property
    def free_at(self) -> int:
        """Global cycle at which some slot of some core next frees."""
        return min(min(slots) for slots in self._free_at)

    def _earliest_slot(self, core: int) -> int:
        slots = self._free_at[core]
        return min(range(self.contexts), key=lambda i: slots[i])

    def _pick_core(self, arrival_time: int, thread: int) -> int:
        if self.cores == 1:
            return 0
        if self.dispatch == "shard":
            return thread % self.cores
        if self.dispatch == "shortest":
            return min(
                range(self.cores),
                key=lambda c: self._free_at[c][self._earliest_slot(c)],
            )
        # "steal": home core unless it is busy at the arrival instant
        # and another core has an idle slot right now.
        home = thread % self.cores
        if self._free_at[home][self._earliest_slot(home)] <= arrival_time:
            return home
        idle = [
            c for c in range(self.cores)
            if c != home
            and self._free_at[c][self._earliest_slot(c)] <= arrival_time
        ]
        if not idle:
            return home
        return min(
            idle, key=lambda c: self._free_at[c][self._earliest_slot(c)]
        )

    def admit(self, arrival_time: int, thread: int = 0) -> bool:
        """Admission-control hook; never mutates pool state.

        ``"none"`` admits everything; ``"backlog"`` rejects when every
        slot in the pool is still busy ``admission_backlog_cycles``
        past the request's arrival.
        """
        if self.admission == "none":
            return True
        return self.free_at - arrival_time <= self.admission_backlog_cycles

    def serve(
        self, arrival_time: int, service_cycles: int, thread: int = 0
    ) -> Tuple[int, int]:
        """Admit a request; returns ``(start_time, queue_delay)``.

        Statistics bumps match :class:`OSCoreQueue.serve` exactly:
        ``os_core_busy_cycles`` aggregates across the whole pool (the
        ``os`` row of the stats keeps meaning "OS-side busy cycles").
        """
        if arrival_time < 0 or service_cycles < 0:
            raise SimulationError("negative time handed to the OS-core pool")
        self.requests += 1
        core = self._pick_core(arrival_time, thread)
        slots = self._free_at[core]
        slot = min(range(self.contexts), key=lambda i: slots[i])
        start = max(arrival_time, slots[slot])
        queue_delay = start - arrival_time
        slots[slot] = start + service_cycles
        self.stats.os_core_busy_cycles += service_cycles
        self.stats.queue_delay_total += queue_delay
        self.stats.queue_delay_events += 1
        return start, queue_delay
