"""The dedicated OS core's request queue.

The paper's OS core is a normal (non-SMT) core: it serves one off-loaded
invocation at a time, and when a request arrives while it is busy the
requesting user core stalls — the queuing delay measured in Section V.C
(1,348 cycles average with two user cores sharing one OS core; exploding
past 25,000 cycles with four).

Because the paper's conclusion is that "1:1, or possibly 1:N, may be the
appropriate ratio of provisioning OS cores" — with multi-threading the
natural way to stretch one OS core further (its own Section IV notes
server workloads are "best handled by in-order cores with
multi-threading") — the queue optionally models an SMT OS core with
``contexts`` hardware threads: up to ``contexts`` off-loaded invocations
execute concurrently, each context serving FCFS.  The shared-cache
behaviour of concurrent OS work is already captured by the single OS
node all off-loads execute against.

The queue is FCFS in arrival order.  Because user cores only interact
through this queue (their caches are private), simulating it needs only
the per-context ``free_at`` horizons, not a full event calendar.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.sim.stats import OffloadStats


class OSCoreQueue:
    """FCFS service window(s) of the single OS core.

    With ``contexts == 1`` this is the paper's non-SMT OS core; larger
    values model SMT contexts that each run one off-loaded invocation.
    """

    def __init__(self, stats: OffloadStats, contexts: int = 1):
        if contexts < 1:
            raise ConfigurationError("the OS core needs at least one context")
        self.stats = stats
        self.contexts = contexts
        self._free_at: List[int] = [0] * contexts
        self.requests = 0

    @property
    def free_at(self) -> int:
        """Global cycle at which some OS-core context next becomes idle."""
        return min(self._free_at)

    def serve(self, arrival_time: int, service_cycles: int) -> Tuple[int, int]:
        """Admit a request arriving at ``arrival_time``.

        Returns ``(start_time, queue_delay)``: the request starts on the
        earliest-free context and advances that context's busy horizon by
        ``service_cycles``.
        """
        if arrival_time < 0 or service_cycles < 0:
            raise SimulationError("negative time handed to the OS core queue")
        self.requests += 1
        slot = min(range(self.contexts), key=lambda i: self._free_at[i])
        start = max(arrival_time, self._free_at[slot])
        queue_delay = start - arrival_time
        self._free_at[slot] = start + service_cycles
        self.stats.os_core_busy_cycles += service_cycles
        self.stats.queue_delay_total += queue_delay
        self.stats.queue_delay_events += 1
        return start, queue_delay
