"""SMT user cores: the paper's 2-threads-per-core server mapping.

Section II: "Our server benchmarks map two threads per core ... This
2:1 mapping allows workloads that might stall on I/O operations to
continue making progress, if possible."  In an off-loading system the
same mechanism hides migration and OS-core time: while one hardware
thread is blocked on an off-loaded invocation, the core executes its
sibling.

:class:`SMTOffloadEngine` extends the base engine with a blocked-switch
scheduler: each user core owns ``threads_per_user_core`` thread
contexts, runs one at a time, and switches when the running thread
blocks on an off-load.  The core idles only when *every* thread is
blocked.  Per-core wall time therefore satisfies

``wall = executed cycles + decision cycles + idle``

and the idle component is reported through the existing
``offload_wait_cycles`` bucket so all downstream throughput accounting
(:class:`~repro.sim.stats.SimulationStats`) works unchanged.  Queue and
migration cycles are accounted in the off-load statistics only — with
overlap they are no longer core-blocking quantities.

The single-threaded base engine remains the calibrated configuration;
``simulate`` picks this engine automatically when
``config.threads_per_user_core > 1``.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import SimulationError
from repro.obs import names
from repro.obs.events import MigrationEvent, QueueEvent
from repro.offload.engine import OS_MODE, USER_MODE, OffloadEngine
from repro.workloads.base import OSInvocation, UserSegment
from repro.workloads.generator import TraceEvent, TraceGenerator


class _ThreadState:
    """One hardware thread's trace position and blocking state."""

    __slots__ = ("thread_id", "generator", "events", "executed",
                 "blocked_until", "done")

    def __init__(self, thread_id: int, generator: TraceGenerator,
                 events: Iterator[TraceEvent]):
        self.thread_id = thread_id
        self.generator = generator
        self.events = events
        self.executed = 0
        self.blocked_until = 0
        self.done = False


class SMTOffloadEngine(OffloadEngine):
    """Off-loading engine with multi-threaded user cores."""

    #: The blocked-switch scheduler interleaves threads mid-stream, so
    #: the columnar engine's per-context dense-key precomputation does
    #: not apply; ``engine="columnar"`` runs the batched engine here —
    #: bit-identical results, batched speed.
    _SUPPORTS_COLUMNAR = False

    def __init__(self, spec, policy, migration, config, controller=None,
                 bus=None, metrics=None, trace_store=None, profiler=None):
        super().__init__(spec, policy, migration, config, controller,
                         bus=bus, metrics=metrics, trace_store=trace_store,
                         profiler=profiler)
        threads = config.threads_per_user_core
        if threads < 2:
            raise SimulationError(
                "SMTOffloadEngine requires threads_per_user_core >= 2; "
                "use OffloadEngine for the single-threaded configuration"
            )
        budget = config.profile.scaled_warmup + config.profile.scaled_roi
        # Per user core: a list of thread states with globally unique
        # thread ids (disjoint address regions per thread).
        self._threads: List[List[_ThreadState]] = []
        for core_index in range(config.num_user_cores):
            group: List[_ThreadState] = []
            for slot in range(threads):
                thread_id = core_index * threads + slot
                if trace_store is not None:
                    generator = trace_store.trace_source(
                        spec, config, thread_id, budget * 2 + 1
                    )
                else:
                    generator = TraceGenerator(
                        spec, config.profile, seed=config.seed,
                        thread_id=thread_id,
                    )
                group.append(
                    _ThreadState(thread_id, generator,
                                 generator.events(budget * 2 + 1))
                )
            self._threads.append(group)
        # Absolute per-core clocks (never reset; used for queue arrivals).
        self._core_clock: List[int] = [0] * config.num_user_cores

    # ------------------------------------------------------------------
    # phase machinery (blocked-switch scheduling)
    # ------------------------------------------------------------------

    def _run_phase(self, budget: int, epochs: bool) -> Tuple[int, int]:
        if budget <= 0:
            return 0, 0
        total = 0
        os_total = 0
        phase_start = list(self._core_clock)
        busy_start = [
            self.stats.cores[i].busy_cycles + self.stats.cores[i].decision_cycles
            for i in range(len(self._core_clock))
        ]
        for group in self._threads:
            for thread in group:
                thread.executed = 0
                thread.done = False

        active_cores = set(range(len(self._threads)))
        while active_cores:
            core_index = min(active_cores, key=lambda i: self._core_clock[i])
            executed, os_executed = self._step_core(core_index, budget)
            total += executed
            os_total += os_executed
            if epochs and executed:
                self._epoch_executed += executed
                self._maybe_end_epoch()
            if all(t.done for t in self._threads[core_index]):
                active_cores.discard(core_index)

        # Report: wall = clock advance (plus any outstanding off-load);
        # everything not spent executing or deciding is off-load idle.
        for core_index, group in enumerate(self._threads):
            outstanding = max(
                (t.blocked_until for t in group), default=0
            )
            end = max(self._core_clock[core_index], outstanding)
            self._core_clock[core_index] = end
            wall = end - phase_start[core_index]
            stats = self.stats.cores[core_index]
            executed_cycles = (
                stats.busy_cycles + stats.decision_cycles - busy_start[core_index]
            )
            stats.offload_wait_cycles += max(0, wall - executed_cycles)
        return total, os_total

    def _step_core(self, core_index: int, budget: int) -> Tuple[int, int]:
        """Advance one core by one event (or one idle skip).

        Returns ``(instructions_executed, os_instructions_executed)``.
        """
        group = self._threads[core_index]
        clock = self._core_clock[core_index]
        runnable = [
            t for t in group if not t.done and t.blocked_until <= clock
        ]
        if not runnable:
            # Every live thread is blocked: idle until the earliest one
            # returns from its off-load.
            next_ready = min(
                t.blocked_until for t in group if not t.done
            )
            self._core_clock[core_index] = next_ready
            return 0, 0

        # Round-robin flavour: least-recently-ready thread first.
        thread = min(runnable, key=lambda t: t.blocked_until)
        event = next(thread.events, None)
        if event is None:
            raise SimulationError("trace exhausted before the phase budget")
        core = self.contexts[core_index].core
        ctx = self.contexts[core_index]

        if isinstance(event, UserSegment):
            prof = self.profiler
            t0 = prof.t() if prof.enabled else 0
            lines, writes = thread.generator.user_accesses(event.instructions)
            code_lines = (
                thread.generator.user_code_accesses(event.instructions)
                if self.config.enable_icache
                else None
            )
            if prof.enabled:
                t1 = prof.t()
                prof.add_ns(self._gen_span, t1 - t0)
            stalls = self._replay(core_index, lines, writes, ctx.tlb)
            if code_lines is not None:
                stalls += self._replay_code(core_index, code_lines)
            if prof.enabled:
                prof.add_ns(self._mem_span, prof.t() - t1)
            if ctx.branch is not None:
                stalls += ctx.branch.execute(event.instructions, USER_MODE)
            cycles = core.retire(event.instructions, stalls)
            self._core_clock[core_index] += cycles
            thread.executed += event.instructions
            if thread.executed >= budget:
                thread.done = True
            return event.instructions, 0

        assert isinstance(event, OSInvocation)
        executed = self._run_smt_invocation(core_index, thread, event)
        thread.executed += event.length
        if thread.executed >= budget:
            thread.done = True
        return event.length, event.length

    def _run_smt_invocation(
        self, core_index: int, thread: _ThreadState, invocation: OSInvocation
    ) -> None:
        offload_stats = self.stats.offload
        offload_stats.os_instructions += invocation.length
        ctx = self.contexts[core_index]
        core = ctx.core

        run_locally = (
            invocation.is_window_trap and not self.config.include_window_traps
        )
        prof = self.profiler
        decision = None
        if not run_locally:
            offload_stats.os_entries += 1
            t0 = prof.t() if prof.enabled else 0
            decision = self.policy.decide(invocation)
            if prof.enabled:
                prof.add_ns(names.SPAN_POLICY_DECIDE, prof.t() - t0)
            if decision.overhead_cycles:
                core.pay_decision(decision.overhead_cycles)
                self._core_clock[core_index] += decision.overhead_cycles

        t0 = prof.t() if prof.enabled else 0
        lines, writes = thread.generator.os_accesses(invocation)
        code_lines = (
            thread.generator.os_code_accesses(invocation)
            if self.config.enable_icache
            else None
        )
        if prof.enabled:
            prof.add_ns(self._gen_span, prof.t() - t0)

        do_offload = decision is not None and decision.offload
        if do_offload and self._admission_enabled:
            if not self.oscore.admit(
                self._core_clock[core_index], thread=thread.thread_id
            ):
                offload_stats.admission_drops += 1
                do_offload = False
        migration_cycles = 0
        if do_offload:
            offload_stats.offloads += 1
            offload_stats.offloaded_instructions += invocation.length
            one_way = self.migration.one_way_latency
            t0 = prof.t() if prof.enabled else 0
            stalls = self._replay(self.os_node_id, lines, writes, self.os_tlb)
            if code_lines is not None:
                stalls += self._replay_code(self.os_node_id, code_lines)
            if prof.enabled:
                prof.add_ns(self._mem_span, prof.t() - t0)
            if self.os_branch is not None:
                stalls += self.os_branch.execute(invocation.length, OS_MODE)
            service = (
                one_way
                + int(invocation.length * self.config.core.base_cpi)
                + stalls
            )
            arrival = self._core_clock[core_index]
            t0 = prof.t() if prof.enabled else 0
            start, queue_delay = self.oscore.serve(
                arrival, service, thread=thread.thread_id
            )
            if prof.enabled:
                prof.add_ns(names.SPAN_QUEUE, prof.t() - t0)
            self.stats.os_core.instructions += invocation.length
            self.stats.os_core.busy_cycles += service
            migration_cycles = 2 * one_way
            # The THREAD blocks; the core stays free for its siblings.
            thread.blocked_until = start + service + one_way
            if self.bus.enabled:
                self.bus.emit(MigrationEvent(
                    core=core_index, phase=self._phase_label,
                    vector=invocation.vector, length=invocation.length,
                    one_way_latency=one_way, service_cycles=service,
                ))
                self.bus.emit(QueueEvent(
                    core=core_index, phase=self._phase_label,
                    arrival=arrival, start=start, queue_delay=queue_delay,
                    service_cycles=service,
                ))
            if self._queue_hist is not None:
                self._queue_hist.observe(queue_delay)
        else:
            t0 = prof.t() if prof.enabled else 0
            stalls = self._replay(core_index, lines, writes, ctx.tlb)
            if code_lines is not None:
                stalls += self._replay_code(core_index, code_lines)
            if prof.enabled:
                prof.add_ns(self._mem_span, prof.t() - t0)
            if ctx.branch is not None:
                stalls += ctx.branch.execute(invocation.length, OS_MODE)
            cycles = core.retire(invocation.length, stalls)
            self._core_clock[core_index] += cycles
        if decision is not None:
            if self.bus.enabled:
                self._emit_decision(
                    core_index, invocation, decision, migration_cycles
                )
            if self._length_hist is not None:
                self._length_hist.observe(invocation.length)
            t0 = prof.t() if prof.enabled else 0
            self.policy.observe(invocation, decision)
            if prof.enabled:
                prof.add_ns(names.SPAN_POLICY_DECIDE, prof.t() - t0)
