"""``python -m repro`` — run the CLI without the console-script install.

Equivalent to ``python -m repro.cli`` and to the ``repro`` entry point.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
