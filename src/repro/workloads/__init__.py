"""Workload substrate: specs, the trace generator, calibrated presets."""

from repro.workloads.base import (
    MemoryBehavior,
    OSInvocation,
    SharingModel,
    UserSegment,
    WorkloadSpec,
)
from repro.workloads.generator import (
    OS_BASE,
    REGION_STRIDE,
    SHARED_BASE,
    TraceGenerator,
)
from repro.workloads.presets import (
    COMPUTE_WORKLOADS,
    SERVER_WORKLOADS,
    all_workloads,
    compute_workloads,
    get_workload,
    server_workloads,
)

__all__ = [
    "COMPUTE_WORKLOADS",
    "MemoryBehavior",
    "OSInvocation",
    "OS_BASE",
    "REGION_STRIDE",
    "SERVER_WORKLOADS",
    "SHARED_BASE",
    "SharingModel",
    "TraceGenerator",
    "UserSegment",
    "WorkloadSpec",
    "all_workloads",
    "compute_workloads",
    "get_workload",
    "server_workloads",
]
