"""Trace persistence: save, reload, and summarise event traces.

Trace-driven studies live and die by reproducibility.  Every trace this
library generates is already reproducible from ``(spec, profile, seed)``,
but downstream users often want the *artifact*: a file they can archive,
diff across library versions, feed to external tools, or inspect.  This
module serialises an event stream to JSON-lines (one event per line,
with a header record carrying the generating parameters) and reloads it
into the same event objects.

It also computes the summary a trace consumer usually wants first —
per-vector invocation counts and run-length statistics, the privileged
instruction share, and the short/long invocation mix the paper's
analysis revolves around (:func:`summarise`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Union

from repro.cpu.registers import ArchitectedState
from repro.errors import WorkloadError
from repro.sim.config import ScaleProfile
from repro.workloads.base import OSInvocation, UserSegment
from repro.workloads.generator import TraceEvent, TraceGenerator
from repro.workloads.presets import get_workload

FORMAT_VERSION = 1


def save_trace(
    path: Union[str, Path],
    events: Iterable[TraceEvent],
    workload: str = "",
    seed: int = 0,
    profile_name: str = "",
) -> int:
    """Write ``events`` to ``path`` as JSON-lines; returns event count.

    The first line is a header record with the generation parameters so
    a reloaded trace knows its provenance.
    """
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        header = {
            "kind": "header",
            "version": FORMAT_VERSION,
            "workload": workload,
            "seed": seed,
            "profile": profile_name,
        }
        handle.write(json.dumps(header) + "\n")
        for event in events:
            handle.write(json.dumps(_encode(event)) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> "StoredTrace":
    """Reload a trace written by :func:`save_trace`."""
    path = Path(path)
    events: List[TraceEvent] = []
    header: Dict = {}
    with path.open() as handle:
        for line_number, line in enumerate(handle):
            record = json.loads(line)
            if line_number == 0:
                if record.get("kind") != "header":
                    raise WorkloadError(f"{path}: missing trace header")
                if record.get("version") != FORMAT_VERSION:
                    raise WorkloadError(
                        f"{path}: unsupported trace version "
                        f"{record.get('version')}"
                    )
                header = record
                continue
            events.append(_decode(record, path, line_number))
    return StoredTrace(
        events=events,
        workload=header.get("workload", ""),
        seed=header.get("seed", 0),
        profile_name=header.get("profile", ""),
    )


def record_trace(
    path: Union[str, Path],
    workload: str,
    profile: ScaleProfile,
    seed: int = 2010,
    instruction_budget: int = 0,
) -> int:
    """Generate a preset workload's trace and persist it in one step."""
    spec = get_workload(workload)
    generator = TraceGenerator(spec, profile, seed=seed)
    budget = instruction_budget or profile.scaled_roi
    return save_trace(
        path,
        generator.events(budget),
        workload=workload,
        seed=seed,
        profile_name=profile.name,
    )


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------


def _encode(event: TraceEvent) -> Dict:
    if isinstance(event, UserSegment):
        return {"k": "u", "n": event.instructions}
    return {
        "k": "os",
        "v": event.vector,
        "name": event.name,
        "len": event.length,
        "pre": event.pre_interrupt_length,
        "sf": event.shared_fraction,
        "wt": int(event.is_window_trap),
        "ir": int(event.is_interrupt),
        "ie": int(event.interrupts_enabled),
        "su": event.size_units,
        "a": [
            event.astate.pstate,
            event.astate.g0,
            event.astate.g1,
            event.astate.i0,
            event.astate.i1,
        ],
    }


def _decode(record: Dict, path: Path, line_number: int) -> TraceEvent:
    kind = record.get("k")
    if kind == "u":
        return UserSegment(int(record["n"]))
    if kind == "os":
        pstate, g0, g1, i0, i1 = record["a"]
        return OSInvocation(
            vector=int(record["v"]),
            name=record["name"],
            astate=ArchitectedState(pstate=pstate, g0=g0, g1=g1, i0=i0, i1=i1),
            length=int(record["len"]),
            pre_interrupt_length=int(record["pre"]),
            shared_fraction=float(record["sf"]),
            is_window_trap=bool(record["wt"]),
            is_interrupt=bool(record["ir"]),
            interrupts_enabled=bool(record["ie"]),
            size_units=int(record.get("su", 0)),
        )
    raise WorkloadError(f"{path}:{line_number + 1}: unknown event kind {kind!r}")


# ----------------------------------------------------------------------
# stored traces and summaries
# ----------------------------------------------------------------------


@dataclass
class VectorSummary:
    """Run-length statistics for one OS entry point."""

    name: str
    count: int = 0
    total_instructions: int = 0
    min_length: int = 0
    max_length: int = 0

    @property
    def mean_length(self) -> float:
        return self.total_instructions / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Aggregate statistics of one trace (the Section II view)."""

    total_instructions: int = 0
    user_instructions: int = 0
    os_instructions: int = 0
    invocations: int = 0
    short_invocations: int = 0  # < 100 instructions, the paper's class
    window_traps: int = 0
    interrupts: int = 0
    extended_invocations: int = 0
    per_vector: Dict[int, VectorSummary] = field(default_factory=dict)

    @property
    def privileged_fraction(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.os_instructions / self.total_instructions

    @property
    def short_fraction(self) -> float:
        return self.short_invocations / self.invocations if self.invocations else 0.0


@dataclass
class StoredTrace:
    """A reloaded trace plus its provenance."""

    events: List[TraceEvent]
    workload: str = ""
    seed: int = 0
    profile_name: str = ""

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


def summarise(events: Iterable[TraceEvent]) -> TraceSummary:
    """Compute a :class:`TraceSummary` over any event stream."""
    summary = TraceSummary()
    for event in events:
        if isinstance(event, UserSegment):
            summary.user_instructions += event.instructions
            summary.total_instructions += event.instructions
            continue
        summary.invocations += 1
        summary.os_instructions += event.length
        summary.total_instructions += event.length
        if event.length < 100:
            summary.short_invocations += 1
        if event.is_window_trap:
            summary.window_traps += 1
        if event.is_interrupt:
            summary.interrupts += 1
        if event.was_extended:
            summary.extended_invocations += 1
        vector = summary.per_vector.get(event.vector)
        if vector is None:
            vector = VectorSummary(name=event.name)
            summary.per_vector[event.vector] = vector
        vector.count += 1
        vector.total_instructions += event.length
        if vector.count == 1:
            vector.min_length = vector.max_length = event.length
        else:
            vector.min_length = min(vector.min_length, event.length)
            vector.max_length = max(vector.max_length, event.length)
    return summary
