"""Workload specification and trace event types.

A *trace* is a deterministic, seeded sequence of two event kinds:

- :class:`UserSegment` — a block of user-mode instructions;
- :class:`OSInvocation` — one privileged-mode entry: a system call, a
  register-window spill/fill trap, or a standalone device interrupt.

Every :class:`OSInvocation` carries the :class:`ArchitectedState` visible
at the privileged-mode switch (what the paper's AState hash sees), its
*actual* run length including any interrupt extension, and its memory
behaviour (what fraction of its references hit the user/OS shared
region).

The :class:`WorkloadSpec` bundles all generator parameters.  The presets
module instantiates it for apache, specjbb, derby, and the compute codes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.cpu.registers import ArchitectedState
from repro.errors import WorkloadError
from repro.os_model.interrupts import InterruptModel
from repro.os_model.runlength import NoiseModel
from repro.os_model.syscalls import ARG_LINEAR, BIMODAL, FIXED, get_syscall
from repro.os_model.traps import WindowTrapModel


@dataclass(frozen=True)
class UserSegment:
    """A block of user-mode instructions between privileged entries."""

    instructions: int


@dataclass(frozen=True)
class OSInvocation:
    """One privileged-mode entry.

    ``length`` is the ground-truth instruction count *including* any
    device-interrupt extension; ``pre_interrupt_length`` excludes it (this
    is the quantity an ideal argument-based estimator could know).
    ``shared_fraction`` is the fraction of this invocation's memory
    references that target the invoking thread's user/OS shared region.
    """

    vector: int
    name: str
    astate: ArchitectedState
    length: int
    pre_interrupt_length: int
    shared_fraction: float
    is_window_trap: bool = False
    is_interrupt: bool = False
    interrupts_enabled: bool = True
    #: Size operand (in cache-line units) of arg-linear calls.  On SPARC
    #: this is the third argument register (``%i2`` for ``read``'s byte
    #: count), which the AState hash does *not* see — the hash sees the
    #: buffer pointer in ``i1`` — but which software instrumentation can
    #: read to estimate the run length (Section II's ``read`` example).
    size_units: int = 0

    @property
    def was_extended(self) -> bool:
        """True when a device interrupt lengthened this invocation."""
        return self.length > self.pre_interrupt_length


@dataclass(frozen=True)
class SharingModel:
    """How an invocation's shared-region access fraction varies with length.

    Short privileged sequences (argument marshalling, window traps,
    ``getpid``) mostly touch the invoking thread's state — data that also
    lives in the user core's cache — while long calls stream OS-private
    structures (page cache, protocol state).  We model the shared fraction
    as ``long_fraction + (short_fraction - long_fraction) *
    exp(-length / decay_length)``, a smooth interpolation between those
    extremes.  This is what makes N=0 lose to N=100 through coherence
    traffic, as in the paper's Figure 4 discussion.
    """

    short_fraction: float = 0.60
    long_fraction: float = 0.12
    decay_length: float = 900.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.long_fraction <= self.short_fraction <= 1.0:
            raise WorkloadError(
                "need 0 <= long_fraction <= short_fraction <= 1"
            )
        if self.decay_length <= 0:
            raise WorkloadError("decay_length must be positive")

    def fraction_for(self, length: int) -> float:
        spread = self.short_fraction - self.long_fraction
        return self.long_fraction + spread * math.exp(-length / self.decay_length)


@dataclass(frozen=True)
class MemoryBehavior:
    """Reference-stream parameters of a workload.

    Working-set sizes are in cache lines *at full scale* (the paper's 1 MB
    L2 = 16,384 lines); the generator divides them by the scale profile's
    ``cache_scale`` so pressure relative to the caches is preserved.

    The address stream is two-tier: with probability ``hot_probability``
    an access falls in the hottest ``hot_fraction`` of the region,
    otherwise anywhere in it — a standard compact model of temporal
    locality that produces smooth miss-rate vs. cache-size curves.
    """

    memory_ratio: float = 0.30
    write_fraction: float = 0.30
    user_ws_lines: int = 24_000
    os_ws_lines: int = 20_000
    shared_ws_lines: int = 4_000
    hot_fraction: float = 0.10
    hot_probability: float = 0.85
    user_shared_fraction: float = 0.06
    os_shared_write_fraction: float = 0.50
    #: Instruction-footprint sizes (full-scale lines), used only when the
    #: simulator runs with ``enable_icache``.  Code is loopier than data:
    #: the generator uses a tighter hot set for it.
    user_code_lines: int = 4_000
    os_code_lines: int = 8_000

    def __post_init__(self) -> None:
        for name in ("memory_ratio", "write_fraction", "hot_fraction",
                     "hot_probability", "user_shared_fraction",
                     "os_shared_write_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1], got {value}")
        for name in ("user_ws_lines", "os_ws_lines", "shared_ws_lines",
                     "user_code_lines", "os_code_lines"):
            if getattr(self, name) <= 0:
                raise WorkloadError(f"{name} must be positive")


@dataclass(frozen=True)
class WorkloadSpec:
    """Complete generative description of one benchmark program.

    ``syscall_mix`` pairs catalogue syscall names with relative weights.
    ``os_fraction`` is the target fraction of all instructions executed in
    privileged mode via system calls (window traps and standalone
    interrupts add on top); the generator derives the mean user-segment
    length from it.  ``size_classes``/``size_weights`` give the discrete
    distribution of the size argument (``i1``) used by arg-linear calls —
    discrete classes are what make AState histories repeat, as real
    applications overwhelmingly issue I/O in a few fixed sizes.
    """

    name: str
    syscall_mix: Tuple[Tuple[str, float], ...]
    os_fraction: float
    size_classes: Tuple[int, ...] = (1, 4, 16, 64)
    size_weights: Tuple[float, ...] = (0.4, 0.3, 0.2, 0.1)
    fd_count: int = 8
    memory: MemoryBehavior = field(default_factory=MemoryBehavior)
    sharing: SharingModel = field(default_factory=SharingModel)
    window_traps: WindowTrapModel = field(default_factory=WindowTrapModel)
    interrupts: InterruptModel = field(default_factory=InterruptModel)
    noise: NoiseModel = field(default_factory=NoiseModel)
    threads_per_core: int = 2
    description: str = ""

    def __post_init__(self) -> None:
        if not self.syscall_mix:
            raise WorkloadError(f"{self.name}: empty syscall mix")
        total = sum(w for _, w in self.syscall_mix)
        if total <= 0:
            raise WorkloadError(f"{self.name}: syscall weights sum to zero")
        for sc_name, weight in self.syscall_mix:
            if weight < 0:
                raise WorkloadError(f"{self.name}: negative weight for {sc_name}")
            get_syscall(sc_name)  # raises WorkloadError when unknown
        if not 0.0 < self.os_fraction < 1.0:
            raise WorkloadError(f"{self.name}: os_fraction must be in (0, 1)")
        if len(self.size_classes) != len(self.size_weights):
            raise WorkloadError(f"{self.name}: size classes/weights mismatch")
        if sum(self.size_weights) <= 0:
            raise WorkloadError(f"{self.name}: size weights sum to zero")
        if self.fd_count <= 0:
            raise WorkloadError(f"{self.name}: fd_count must be positive")
        if self.threads_per_core <= 0:
            raise WorkloadError(f"{self.name}: threads_per_core must be positive")

    def expected_syscall_length(self) -> float:
        """Analytic mean instruction count of one syscall invocation.

        Used to size user segments so the realised privileged-mode share
        matches ``os_fraction``.  Interrupt extensions are excluded (they
        are rare and the target is approximate by design).
        """
        total_weight = sum(w for _, w in self.syscall_mix)
        mean_size = sum(
            s * w for s, w in zip(self.size_classes, self.size_weights)
        ) / sum(self.size_weights)
        expected = 0.0
        for sc_name, weight in self.syscall_mix:
            syscall = get_syscall(sc_name)
            if syscall.kind == FIXED:
                mean = float(syscall.base_length)
            elif syscall.kind == ARG_LINEAR:
                mean = syscall.base_length + syscall.per_unit * mean_size
            elif syscall.kind == BIMODAL:
                mean = (
                    syscall.base_length * (1 - syscall.slow_probability)
                    + syscall.slow_length * syscall.slow_probability
                )
            else:  # pragma: no cover - kinds validated at construction
                raise WorkloadError(f"unknown kind {syscall.kind}")
            expected += weight / total_weight * mean
        return expected

    def mean_user_segment(self) -> float:
        """Mean user-mode instructions between consecutive syscalls."""
        mean_os = self.expected_syscall_length()
        return mean_os * (1.0 - self.os_fraction) / self.os_fraction
