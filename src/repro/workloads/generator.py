"""Seeded synthetic trace generation.

:class:`TraceGenerator` turns a :class:`~repro.workloads.base.WorkloadSpec`
into a deterministic stream of :class:`UserSegment` and
:class:`OSInvocation` events plus, on demand, the memory reference stream
of each event.  All randomness flows through one ``numpy`` generator
seeded at construction, and the *consumption order is independent of any
off-loading policy decision*, so two simulations of the same
``(spec, profile, seed)`` triple replay byte-identical traces — the
fairness property every policy comparison in the paper relies on.

Address space layout (all units are cache lines):

- each thread's **user region** at ``thread_id * REGION_STRIDE``;
- each thread's **shared region** (user/OS shared buffers) at
  ``SHARED_BASE + thread_id * REGION_STRIDE``;
- one common **OS region** at ``OS_BASE`` — shared by all OS activity, so
  OS invocations from different threads "interact constructively" in the
  OS core's cache, as the paper describes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.cpu.registers import ArchitectedState, PState
from repro.errors import WorkloadError
from repro.os_model.interrupts import INTERRUPT_VECTOR
from repro.os_model.runlength import apply_jitter, realise_length
from repro.os_model.syscalls import ARG_LINEAR, BIMODAL, get_syscall
from repro.sim.config import ScaleProfile
from repro.workloads.base import OSInvocation, UserSegment, WorkloadSpec

#: Line-address stride between per-thread regions (2^22 lines = 256 MB).
REGION_STRIDE = 1 << 22
#: Base line address of the per-thread shared regions.
SHARED_BASE = 1 << 28
#: Base line address of the common OS region.
OS_BASE = 1 << 29
#: Base line address of per-thread user code and the shared OS code.
USER_CODE_BASE = 1 << 30
OS_CODE_BASE = (1 << 30) + (1 << 29)

#: Instruction-fetch line transitions per instruction (64 B lines hold
#: ~16 instructions; taken branches cut sequential runs roughly in half).
CODE_TRANSITIONS_PER_INSTRUCTION = 1.0 / 8.0
#: Code locality is tighter than data locality (hot loops).
CODE_HOT_FRACTION = 0.06
CODE_HOT_PROBABILITY = 0.95

#: Register-window traps reference the user stack almost exclusively.
WINDOW_TRAP_SHARED_FRACTION = 0.92
#: ... and a spill is store-dominated.
WINDOW_TRAP_WRITE_FRACTION = 0.70

#: Lines of the OS region forming the kernel entry/exit path (trap table,
#: current-task state): every privileged entry touches these few lines, so
#: in a shared-core system they stay resident and short syscalls are
#: nearly free — the reason off-loading short calls buys little hit-rate
#: relief while still paying full coherence cost.
OS_ENTRY_LINES = 16
#: Memory references each invocation spends on the entry/exit path.
ENTRY_PATH_REFS = 10
#: Lines at the bottom of the shared region modelling the current user
#: stack / argument block, touched by window traps and argument
#: marshalling and re-touched densely by subsequent user code.
STACK_LINES = 8

TraceEvent = Union[UserSegment, OSInvocation]


class TraceGenerator:
    """Deterministic event and address stream for one hardware thread."""

    def __init__(
        self,
        spec: WorkloadSpec,
        profile: ScaleProfile,
        seed: int = 2010,
        thread_id: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if thread_id < 0:
            raise WorkloadError("thread_id must be non-negative")
        self.spec = spec
        self.profile = profile
        self.thread_id = thread_id
        # All randomness flows through one explicitly-constructed
        # generator (simlint D101 bans module-level draws); callers may
        # inject their own, e.g. to share a SeedSequence spawn tree.
        self.rng = (
            rng if rng is not None else np.random.default_rng((seed, thread_id))
        )

        mem = spec.memory
        self.user_ws = max(16, mem.user_ws_lines // profile.cache_scale)
        self.os_ws = max(16, mem.os_ws_lines // profile.cache_scale)
        self.shared_ws = max(8, mem.shared_ws_lines // profile.cache_scale)
        self.user_base = thread_id * REGION_STRIDE
        self.shared_base = SHARED_BASE + thread_id * REGION_STRIDE
        self.os_base = OS_BASE
        self._stack_lines = min(STACK_LINES, self.shared_ws)
        self.user_code_ws = max(16, mem.user_code_lines // profile.cache_scale)
        self.os_code_ws = max(16, mem.os_code_lines // profile.cache_scale)
        self.user_code_base = USER_CODE_BASE + thread_id * REGION_STRIDE
        self.os_code_base = OS_CODE_BASE

        names = [name for name, _ in spec.syscall_mix]
        weights = np.array([w for _, w in spec.syscall_mix], dtype=float)
        self._syscall_names = names
        self._syscalls = [get_syscall(name) for name in names]
        self._syscall_probs = weights / weights.sum()
        size_weights = np.array(spec.size_weights, dtype=float)
        self._size_probs = size_weights / size_weights.sum()
        self._size_classes = np.array(spec.size_classes, dtype=np.int64)
        # Per-syscall argument pools: applications name a handful of
        # objects (descriptors, paths), so the i0 register cycles through
        # a small set of values — realistic small file-descriptor numbers
        # offset per syscall so different calls name different objects.
        # For bimodal calls a deterministic subset of the pool takes the
        # slow path (cold objects).
        self._arg_pools: List[np.ndarray] = []
        self._slow_cutoffs: List[int] = []
        for index, syscall in enumerate(self._syscalls):
            pool = np.arange(3, 3 + spec.fd_count, dtype=np.int64) + 97 * index
            self._arg_pools.append(pool)
            if syscall.kind == BIMODAL:
                cutoff = int(round(syscall.slow_probability * spec.fd_count))
                self._slow_cutoffs.append(cutoff)
            else:
                self._slow_cutoffs.append(0)
        # Buffer addresses carried in i1 by arg-linear calls: one buffer
        # per size class (applications reuse fixed I/O buffers), living
        # high in the address space like real pointers — their diverse
        # high bits are what keeps the XOR hash nearly collision-free,
        # as with real register contents.
        self._buffer_pointers = [
            0x7F80_0000_0000 + (slot + 1) * 0x0001_0001_0000
            for slot in range(len(spec.size_classes))
        ]

        self._mean_user_segment = spec.mean_user_segment()
        self._priv_pstate_ie = PState.privileged_mode(interrupts_enabled=True).value
        self._priv_pstate_noie = PState.privileged_mode(interrupts_enabled=False).value

    # ------------------------------------------------------------------
    # event stream
    # ------------------------------------------------------------------

    def events(self, instruction_budget: int) -> Iterator[TraceEvent]:
        """Yield trace events until ``instruction_budget`` is covered.

        The budget counts user *and* privileged instructions; generation
        stops after the event that crosses it, so the realised total may
        overshoot by at most one event.
        """
        if instruction_budget <= 0:
            return
        emitted = 0
        rng = self.rng
        spec = self.spec
        while emitted < instruction_budget:
            segment = max(1, int(rng.exponential(self._mean_user_segment)))
            n_traps = spec.window_traps.traps_in_segment(segment, rng)
            n_interrupts = spec.interrupts.standalone_in_segment(segment, rng)
            n_breaks = n_traps + n_interrupts
            round_events: List[TraceEvent] = []
            if n_breaks:
                chunks = self._split_segment(segment, n_breaks + 1)
                breaks: List[OSInvocation] = [
                    self._make_window_trap() for _ in range(n_traps)
                ] + [self._make_standalone_interrupt() for _ in range(n_interrupts)]
                if len(breaks) > 1:  # interleave traps and interrupts
                    order = rng.permutation(len(breaks))
                    breaks = [breaks[i] for i in order]
                for chunk, invocation in zip(chunks, breaks + [None]):
                    if chunk > 0:
                        round_events.append(UserSegment(int(chunk)))
                    if invocation is not None:
                        round_events.append(invocation)
            else:
                round_events.append(UserSegment(segment))
            round_events.append(self._make_syscall())
            for event in round_events:
                yield event
                emitted += (
                    event.instructions
                    if isinstance(event, UserSegment)
                    else event.length
                )
                if emitted >= instruction_budget:
                    return

    def _split_segment(self, total: int, parts: int) -> List[int]:
        """Split ``total`` instructions into ``parts`` non-negative chunks."""
        if parts <= 1:
            return [total]
        return list(self.rng.multinomial(total, [1.0 / parts] * parts))

    # ------------------------------------------------------------------
    # invocation construction
    # ------------------------------------------------------------------

    def _make_syscall(self) -> OSInvocation:
        rng = self.rng
        spec = self.spec
        index = int(rng.choice(len(self._syscalls), p=self._syscall_probs))
        syscall = self._syscalls[index]
        pool = self._arg_pools[index]
        pool_slot = int(rng.integers(0, len(pool)))
        i0 = int(pool[pool_slot])
        if syscall.kind == ARG_LINEAR:
            size_slot = int(rng.choice(len(self._size_classes), p=self._size_probs))
            size_units = int(self._size_classes[size_slot])
            # i1 carries the buffer pointer (what the hash sees); the
            # size operand travels in a higher argument register the
            # hash does not cover.
            i1 = self._buffer_pointers[size_slot]
        else:
            size_units = 0
            i1 = 0
        argument_slow = pool_slot < self._slow_cutoffs[index]
        length, _ = realise_length(
            syscall, i0, size_units, rng, spec.noise, argument_slow_path=argument_slow
        )
        extension = spec.interrupts.extension_for(True, rng)
        astate = ArchitectedState(
            pstate=self._priv_pstate_ie, g1=syscall.number, i0=i0, i1=i1
        )
        total_length = length + extension
        return OSInvocation(
            vector=syscall.number,
            name=syscall.name,
            astate=astate,
            length=total_length,
            pre_interrupt_length=length,
            shared_fraction=spec.sharing.fraction_for(total_length),
            interrupts_enabled=True,
            size_units=size_units,
        )

    def _make_window_trap(self) -> OSInvocation:
        vector, length = self.spec.window_traps.draw_trap(self.rng)
        length = apply_jitter(length, self.rng, self.spec.noise)
        astate = ArchitectedState(pstate=self._priv_pstate_noie, g1=vector)
        # A spill/fill trap stores/loads a register window on the *user
        # stack*: nearly all of its references are to user-owned lines,
        # which is why off-loading it generates pure coherence traffic.
        return OSInvocation(
            vector=vector,
            name="window_trap",
            astate=astate,
            length=length,
            pre_interrupt_length=length,
            shared_fraction=WINDOW_TRAP_SHARED_FRACTION,
            is_window_trap=True,
            interrupts_enabled=False,
        )

    def _make_standalone_interrupt(self) -> OSInvocation:
        # A handful of device vectors with stable handler lengths, so
        # interrupt AStates repeat and predict well.
        device, base_length = self.spec.interrupts.draw_standalone(self.rng)
        length = apply_jitter(base_length, self.rng, self.spec.noise)
        astate = ArchitectedState(
            pstate=self._priv_pstate_noie, g1=INTERRUPT_VECTOR, i0=device
        )
        return OSInvocation(
            vector=INTERRUPT_VECTOR,
            name="device_interrupt",
            astate=astate,
            length=length,
            pre_interrupt_length=length,
            shared_fraction=self.spec.sharing.long_fraction,
            is_interrupt=True,
            interrupts_enabled=False,
        )

    # ------------------------------------------------------------------
    # memory reference streams
    # ------------------------------------------------------------------

    def _draw_region(self, base: int, working_set: int, count: int) -> np.ndarray:
        """Two-tier locality draw of ``count`` line addresses."""
        rng = self.rng
        mem = self.spec.memory
        hot = max(1, int(working_set * mem.hot_fraction))
        hot_draws = rng.integers(0, hot, count)
        cold_draws = rng.integers(0, working_set, count)
        take_hot = rng.random(count) < mem.hot_probability
        return base + np.where(take_hot, hot_draws, cold_draws)

    def user_accesses(self, instructions: int) -> Tuple[np.ndarray, np.ndarray]:
        """Reference stream of a user segment: ``(lines, is_write)``.

        A small fraction of user references touch the thread's shared
        region — half of them the hot stack/argument block (dragging
        spilled stack lines back from the OS core after an off-load),
        half the wider shared buffers the OS filled (e.g. ``read`` data).
        """
        mem = self.spec.memory
        count = int(instructions * mem.memory_ratio)
        if count == 0:
            return _EMPTY_LINES, _EMPTY_WRITES
        rng = self.rng
        lines = self._draw_region(self.user_base, self.user_ws, count)
        shared_mask = rng.random(count) < mem.user_shared_fraction
        n_shared = int(shared_mask.sum())
        if n_shared:
            shared = self._draw_region(self.shared_base, self.shared_ws, n_shared)
            stack_mask = rng.random(n_shared) < 0.5
            n_stack = int(stack_mask.sum())
            if n_stack:
                shared[stack_mask] = self.shared_base + rng.integers(
                    0, self._stack_lines, n_stack
                )
            lines[shared_mask] = shared
        writes = rng.random(count) < mem.write_fraction
        return lines, writes

    def os_accesses(self, invocation: OSInvocation) -> Tuple[np.ndarray, np.ndarray]:
        """Reference stream of one OS invocation: ``(lines, is_write)``.

        Three components, mirroring how kernel footprints actually
        decompose:

        1. the **entry/exit path** — up to :data:`ENTRY_PATH_REFS`
           references to the few :data:`OS_ENTRY_LINES` every privileged
           entry touches (trap table, task state).  For a short call this
           is essentially the whole footprint;
        2. the **body** — the remaining references, of which
           ``invocation.shared_fraction`` target the invoking thread's
           shared region (argument/result movement; window traps target
           the hot stack block) and the rest roam the common OS working
           set (page cache, protocol state);
        3. shared-region references write more often
           (``os_shared_write_fraction``) because the OS deposits results
           there; spills are store-dominated.
        """
        mem = self.spec.memory
        count = int(invocation.length * mem.memory_ratio)
        if count == 0:
            return _EMPTY_LINES, _EMPTY_WRITES
        rng = self.rng

        n_entry = min(count, ENTRY_PATH_REFS)
        entry_lines = self.os_base + rng.integers(0, OS_ENTRY_LINES, n_entry)
        n_body = count - n_entry
        if n_body == 0:
            writes = rng.random(n_entry) < mem.write_fraction
            if invocation.is_window_trap:
                # Trap-table reads aside, a pure window trap moves the
                # register window to/from the user stack.
                stack = self.shared_base + rng.integers(
                    0, self._stack_lines, n_entry
                )
                writes = rng.random(n_entry) < WINDOW_TRAP_WRITE_FRACTION
                return stack, writes
            return entry_lines, writes

        # An L-instruction invocation cannot roam more kernel state than
        # it has time to touch: its body references fall in a window at
        # the head of the OS region that grows with L.  Short calls stay
        # inside the always-resident kernel head (task state, counters);
        # long calls stream the full OS working set.
        body_window = min(self.os_ws, OS_ENTRY_LINES + invocation.length // 4)
        body = self._draw_region(self.os_base, body_window, n_body)
        writes_body = rng.random(n_body) < mem.write_fraction
        shared_mask = rng.random(n_body) < invocation.shared_fraction
        n_shared = int(shared_mask.sum())
        if n_shared:
            if invocation.is_window_trap:
                shared = self.shared_base + rng.integers(
                    0, self._stack_lines, n_shared
                )
                shared_write_fraction = WINDOW_TRAP_WRITE_FRACTION
            else:
                shared = self._draw_region(
                    self.shared_base, self.shared_ws, n_shared
                )
                stack_mask = rng.random(n_shared) < 0.35
                n_stack = int(stack_mask.sum())
                if n_stack:
                    shared[stack_mask] = self.shared_base + rng.integers(
                        0, self._stack_lines, n_stack
                    )
                shared_write_fraction = mem.os_shared_write_fraction
            body[shared_mask] = shared
            writes_body[shared_mask] = rng.random(n_shared) < shared_write_fraction

        lines = np.concatenate([entry_lines, body])
        writes = np.concatenate(
            [rng.random(n_entry) < mem.write_fraction * 0.5, writes_body]
        )
        return lines, writes


    # ------------------------------------------------------------------
    # instruction-fetch streams (used when the simulator enables the L1I)
    # ------------------------------------------------------------------

    def _draw_code(self, base: int, working_set: int, count: int) -> np.ndarray:
        """Tight-loop locality draw over a code region."""
        rng = self.rng
        hot = max(1, int(working_set * CODE_HOT_FRACTION))
        hot_draws = rng.integers(0, hot, count)
        cold_draws = rng.integers(0, working_set, count)
        take_hot = rng.random(count) < CODE_HOT_PROBABILITY
        return base + np.where(take_hot, hot_draws, cold_draws)

    def user_code_accesses(self, instructions: int) -> np.ndarray:
        """Instruction-line transitions of a user segment."""
        count = int(instructions * CODE_TRANSITIONS_PER_INSTRUCTION)
        if count == 0:
            return _EMPTY_LINES
        return self._draw_code(self.user_code_base, self.user_code_ws, count)

    def os_code_accesses(self, invocation: OSInvocation) -> np.ndarray:
        """Instruction-line transitions of one OS invocation.

        Mirrors the data-side footprint logic: the fetch stream stays
        within a code window that grows with run length, so a trivial
        syscall executes a handful of always-hot handler lines while a
        long one walks a large slice of the kernel text.  All threads
        share one OS code region — the constructive instruction-cache
        reuse the paper attributes to the dedicated OS core.
        """
        count = int(invocation.length * CODE_TRANSITIONS_PER_INSTRUCTION)
        if count == 0:
            return _EMPTY_LINES
        window = min(self.os_code_ws, OS_ENTRY_LINES + invocation.length // 8)
        return self._draw_code(self.os_code_base, window, count)


_EMPTY_LINES = np.empty(0, dtype=np.int64)
_EMPTY_WRITES = np.empty(0, dtype=bool)
