"""Calibrated workload presets for the paper's benchmark suite.

The paper evaluates three server workloads — **Apache 2.2.6** serving
CGI-selected static pages, **SPECjbb2005** (middleware), and **Derby**
(the SPECjvm2008 database workload) — plus a group of compute-bound codes
from PARSEC (blackscholes, canneal), BioBench (fasta_protein, mummer) and
SPEC CPU2006 (mcf, hmmer) that it reports as a single averaged group
because their behaviour is "extremely similar".

Each preset is a :class:`~repro.workloads.base.WorkloadSpec` whose
syscall mix, privileged-instruction share, working sets and interrupt
rates are calibrated so the *reported shapes* match the paper:

- Table III OS-core occupancy by threshold (Apache ≫ SPECjbb ≫ Derby);
- Apache's OS time spread across short and long invocations (CGI fork/
  exec tail), SPECjbb's concentration in the 1,000–5,000 band, Derby's
  short-call profile;
- compute codes executing only a few percent privileged instructions.

The calibration constants were fixed by running
``examples/workload_calibration.py`` and comparing against the paper's
tables; see EXPERIMENTS.md for the resulting numbers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.os_model.interrupts import InterruptModel
from repro.os_model.runlength import NoiseModel
from repro.os_model.traps import WindowTrapModel
from repro.workloads.base import MemoryBehavior, SharingModel, WorkloadSpec


def _apache() -> WorkloadSpec:
    """Apache httpd serving randomly selected static pages via CGI.

    OS-dominated: network syscalls in a few fixed buffer sizes, path
    lookups, descriptor churn, and a fork/exec tail from the CGI script.
    High network-interrupt rate.
    """
    return WorkloadSpec(
        name="apache",
        description="Apache 2.2.6 static pages + CGI selector",
        syscall_mix=(
            ("accept", 3.0),
            ("read", 10.0),
            ("write", 8.0),
            ("send", 6.0),
            ("recv", 5.0),
            ("open", 5.0),
            ("stat", 6.0),
            ("close", 8.0),
            ("poll", 4.0),
            ("gettimeofday", 7.0),
            ("getpid", 2.0),
            ("fcntl", 3.0),
            ("futex", 3.0),
            ("dcache_lookup", 5.0),
            ("fork", 1.0),
            ("execve", 0.9),
            ("wait4", 1.0),
            ("brk", 1.0),
        ),
        os_fraction=0.40,
        size_classes=(4, 32, 256),
        size_weights=(0.40, 0.35, 0.25),
        fd_count=6,
        memory=MemoryBehavior(
            memory_ratio=0.30,
            write_fraction=0.30,
            user_ws_lines=9_000,
            os_ws_lines=11_000,
            shared_ws_lines=2_600,
            hot_fraction=0.10,
            hot_probability=0.96,
            user_shared_fraction=0.08,
        ),
        sharing=SharingModel(short_fraction=0.42, long_fraction=0.12, decay_length=900.0),
        window_traps=WindowTrapModel(rate=1.0 / 900.0),
        interrupts=InterruptModel(
            extension_probability=0.02,
            extension_mean_length=2600,
            standalone_rate=1.0 / 9000.0,
            standalone_mean_length=1900,
        ),
        noise=NoiseModel(),
        threads_per_core=1,  # Apache self-tunes thread counts (paper §II)
    )


def _specjbb() -> WorkloadSpec:
    """SPECjbb2005: Java middleware.

    Moderate OS share concentrated in medium-length invocations (lock
    handoffs, allocation, timer reads); large Java-heap user working set.
    The 1,000–5,000-instruction concentration is what makes SPECjbb the
    workload most sensitive to migration latency in the paper's Fig. 4.
    """
    return WorkloadSpec(
        name="specjbb2005",
        description="SPECjbb2005 middleware (Java warehouse transactions)",
        syscall_mix=(
            ("futex", 10.0),
            ("gettimeofday", 8.0),
            ("sched_yield", 4.0),
            ("read", 3.0),
            ("write", 3.0),
            ("mmap", 2.0),
            ("brk", 2.0),
            ("poll", 2.5),
            ("select", 2.0),
            ("stat", 1.0),
            ("getrusage", 2.0),
            ("wait4", 0.8),
        ),
        os_fraction=0.14,
        size_classes=(16, 64, 512),
        size_weights=(0.40, 0.35, 0.25),
        fd_count=6,
        memory=MemoryBehavior(
            memory_ratio=0.32,
            write_fraction=0.34,
            user_ws_lines=20_000,
            os_ws_lines=4_500,
            shared_ws_lines=2_000,
            hot_fraction=0.12,
            hot_probability=0.93,
            user_shared_fraction=0.08,
        ),
        sharing=SharingModel(short_fraction=0.40, long_fraction=0.12, decay_length=1100.0),
        window_traps=WindowTrapModel(rate=1.0 / 900.0),
        interrupts=InterruptModel(
            extension_probability=0.015,
            extension_mean_length=2400,
            standalone_rate=1.0 / 12_000.0,
            standalone_mean_length=1600,
        ),
        noise=NoiseModel(),
        threads_per_core=2,
    )


def _derby() -> WorkloadSpec:
    """Derby (SPECjvm2008 database workload).

    Mostly user-mode query processing over a large heap; the OS appears
    in brief bursts (lock words, small log writes), so OS-core occupancy
    stays in single digits at every threshold (paper Table III).
    """
    return WorkloadSpec(
        name="derby",
        description="Derby database workload from SPECjvm2008",
        syscall_mix=(
            ("futex", 8.0),
            ("gettimeofday", 6.0),
            ("getpid", 2.0),
            ("read", 2.5),
            ("write", 3.0),
            ("sched_yield", 2.0),
            ("brk", 1.5),
            ("fcntl", 1.5),
            ("stat", 0.8),
            ("poll", 0.6),
        ),
        os_fraction=0.085,
        size_classes=(4, 8, 32, 128),
        size_weights=(0.40, 0.30, 0.20, 0.10),
        fd_count=8,
        memory=MemoryBehavior(
            memory_ratio=0.33,
            write_fraction=0.32,
            user_ws_lines=24_000,
            os_ws_lines=6_000,
            shared_ws_lines=1_800,
            hot_fraction=0.12,
            hot_probability=0.92,
            user_shared_fraction=0.04,
        ),
        sharing=SharingModel(short_fraction=0.40, long_fraction=0.12, decay_length=900.0),
        window_traps=WindowTrapModel(rate=1.0 / 1600.0),
        interrupts=InterruptModel(
            extension_probability=0.012,
            extension_mean_length=2200,
            standalone_rate=1.0 / 20_000.0,
            standalone_mean_length=1500,
        ),
        noise=NoiseModel(),
        threads_per_core=2,
    )


def _compute(
    name: str,
    description: str,
    user_ws_lines: int,
    os_fraction: float = 0.018,
    memory_ratio: float = 0.30,
    hot_probability: float = 0.90,
) -> WorkloadSpec:
    """Template for the compute-bound group.

    Compute codes invoke the OS rarely — heap growth, occasional file
    reads, timer queries — and differ mainly in memory intensity and
    working-set size.  The paper collapses them into one averaged group;
    we keep individual presets so the group average is computed, not
    assumed.
    """
    return WorkloadSpec(
        name=name,
        description=description,
        syscall_mix=(
            ("brk", 3.0),
            ("mmap", 1.5),
            ("read", 2.0),
            ("write", 1.0),
            ("gettimeofday", 1.5),
            ("getrusage", 0.5),
            ("open", 0.3),
            ("close", 0.4),
        ),
        os_fraction=os_fraction,
        size_classes=(16, 64, 256, 1024),
        size_weights=(0.30, 0.30, 0.25, 0.15),
        fd_count=6,
        memory=MemoryBehavior(
            memory_ratio=memory_ratio,
            write_fraction=0.28,
            user_ws_lines=user_ws_lines,
            os_ws_lines=6_000,
            shared_ws_lines=1_200,
            hot_fraction=0.15,
            hot_probability=hot_probability,
            user_shared_fraction=0.02,
        ),
        sharing=SharingModel(short_fraction=0.38, long_fraction=0.10, decay_length=900.0),
        window_traps=WindowTrapModel(rate=1.0 / 8000.0),
        interrupts=InterruptModel(
            extension_probability=0.008,
            extension_mean_length=1200,
            standalone_rate=1.0 / 80_000.0,
            standalone_mean_length=800,
        ),
        noise=NoiseModel(),
        threads_per_core=1,
    )


def _build_registry() -> Dict[str, WorkloadSpec]:
    specs = [
        _apache(),
        _specjbb(),
        _derby(),
        _compute("blackscholes", "PARSEC blackscholes (option pricing)",
                 user_ws_lines=8_000, memory_ratio=0.24, hot_probability=0.96),
        _compute("canneal", "PARSEC canneal (cache-hostile annealing)",
                 user_ws_lines=50_000, memory_ratio=0.34, hot_probability=0.78),
        _compute("fasta_protein", "BioBench fasta protein alignment",
                 user_ws_lines=20_000, memory_ratio=0.30),
        _compute("mummer", "BioBench mummer genome matching",
                 user_ws_lines=36_000, memory_ratio=0.33, hot_probability=0.84),
        _compute("mcf", "SPEC CPU2006 mcf (memory bound)",
                 user_ws_lines=48_000, memory_ratio=0.36, hot_probability=0.82),
        _compute("hmmer", "SPEC CPU2006 hmmer (compute bound)",
                 user_ws_lines=10_000, memory_ratio=0.26, hot_probability=0.95),
    ]
    return {spec.name: spec for spec in specs}


_REGISTRY: Dict[str, WorkloadSpec] = _build_registry()

#: The paper's server-oriented workloads.
SERVER_WORKLOADS = ("apache", "specjbb2005", "derby")

#: The paper's compute-bound group (reported as one averaged group).
COMPUTE_WORKLOADS = (
    "blackscholes",
    "canneal",
    "fasta_protein",
    "mummer",
    "mcf",
    "hmmer",
)


def get_workload(name: str) -> WorkloadSpec:
    """Look up a preset by name; raises :class:`WorkloadError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def server_workloads() -> List[WorkloadSpec]:
    """The three server presets, in the paper's reporting order."""
    return [_REGISTRY[name] for name in SERVER_WORKLOADS]


def compute_workloads() -> List[WorkloadSpec]:
    """The six compute presets forming the paper's averaged group."""
    return [_REGISTRY[name] for name in COMPUTE_WORKLOADS]


def all_workloads() -> List[WorkloadSpec]:
    """Every preset: servers first, then the compute group."""
    return server_workloads() + compute_workloads()
