"""Bench T3 — Table III: % of execution time on the OS core."""

from conftest import emit

from repro.experiments import run_table3


def test_table3(benchmark, config):
    result = benchmark.pedantic(lambda: run_table3(config), rounds=1, iterations=1)
    emit(result)
    # Occupancy falls with rising N for every server workload.
    for name in ("apache", "specjbb2005", "derby"):
        occ = result.occupancy[name]
        assert occ[100] >= occ[5000] >= occ[10000]
    # Apache >> Derby at every threshold, as in the paper.
    for threshold in result.thresholds:
        assert result.value("apache", threshold) >= result.value("derby", threshold)
    # The OS core is busy enough at small N that sharing it looks doubtful.
    assert result.value("apache", 100) > 0.25
