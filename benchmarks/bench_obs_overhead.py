"""Bench OBS — disabled-tracing overhead guard.

The trace bus must be free when nobody is listening: the engine pays one
``if bus.enabled:`` attribute check per instrumentation site and nothing
else (no event objects, no AState hashing, no serialisation).  This
bench estimates what those guards cost a real run and fails if the
estimate ever exceeds 5% of engine runtime — the regression budget the
observability work shipped under.

Two measurements:

1. **guard microbenchmark** — time ~1e6 iterations of the exact check
   the hot loop performs against ``NULL_BUS``, giving a per-site cost;
2. **engine runtime** — the best-of-N wall time of an untraced
   ``simulate`` call, plus the run's OS-entry count to bound how many
   instrumentation sites fired (about three guards per invocation:
   decision, migration, queue).

The asserted ratio is (sites x per-site guard cost) / engine runtime.
For reference the bench also prints the measured enabled-vs-disabled
ratio with an in-memory ring sink attached.
"""

import time
import timeit

from repro import TraceBus, get_workload, make_policy, simulate
from repro.obs import NULL_BUS, RingBufferSink
from repro.offload.migration import AGGRESSIVE

#: Instrumentation sites per OS invocation on the off-load path
#: (decision emit + migration emit + queue emit).
GUARDS_PER_INVOCATION = 3

#: The budget the observability subsystem must stay under when disabled.
MAX_DISABLED_OVERHEAD = 0.05


def _guard_cost_seconds(iterations: int = 1_000_000) -> float:
    """Per-iteration cost of the hot-loop guard, in seconds."""
    bus = NULL_BUS
    total = timeit.timeit(
        "\n".join("bus.enabled" for _ in range(10)),
        globals={"bus": bus},
        number=iterations // 10,
    )
    return total / iterations


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_bus_overhead_under_budget(config):
    spec = get_workload("derby")
    migration = AGGRESSIVE

    def untraced():
        return simulate(
            spec, make_policy("HI", threshold=500), migration, config
        )

    result = untraced()  # warm caches / allocator before timing
    runtime = _best_of(untraced)
    per_guard = _guard_cost_seconds()
    sites = GUARDS_PER_INVOCATION * (
        result.stats.offload.os_entries + result.stats.offload.offloads
    )
    overhead = (sites * per_guard) / runtime

    def traced():
        return simulate(
            spec, make_policy("HI", threshold=500), migration, config,
            bus=TraceBus(RingBufferSink(capacity=4096)),
        )

    traced_runtime = _best_of(traced)

    print()
    print(f"engine runtime (untraced, best of 3): {runtime:.3f}s")
    print(f"guard cost: {per_guard * 1e9:.1f} ns/site x {sites} sites")
    print(f"estimated disabled-tracing overhead: {overhead:.4%}")
    print(f"enabled (ring sink) / disabled ratio: "
          f"{traced_runtime / runtime:.3f}")

    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled trace bus costs {overhead:.2%} of engine runtime, "
        f"budget is {MAX_DISABLED_OVERHEAD:.0%}"
    )


# ----------------------------------------------------------------------
# span profiler: the same guarantee for the second observability layer
# ----------------------------------------------------------------------

from repro.obs.spans import NULL_PROFILER, SpanProfiler  # noqa: E402

#: Profiler guard sites per OS invocation on the off-load path.  Each
#: user segment pays a generate guard, a memory guard, a policy guard
#: and a queue guard, plus the paired ``prof.t()``-skip checks —
#: six attribute reads is a deliberately conservative ceiling.
PROFILER_GUARDS_PER_INVOCATION = 6

#: The budget the span profiler must stay under when disabled
#: (NULL_PROFILER, the default for every entry point).
MAX_DISABLED_PROFILER_OVERHEAD = 0.02


def test_disabled_profiler_overhead_under_budget(config):
    spec = get_workload("derby")
    migration = AGGRESSIVE

    def unprofiled():
        return simulate(
            spec, make_policy("HI", threshold=500), migration, config
        )

    result = unprofiled()  # warm caches / allocator before timing
    runtime = _best_of(unprofiled)
    profiler = NULL_PROFILER
    total = timeit.timeit(
        "\n".join("profiler.enabled" for _ in range(10)),
        globals={"profiler": profiler},
        number=100_000,
    )
    per_guard = total / 1_000_000
    sites = PROFILER_GUARDS_PER_INVOCATION * (
        result.stats.offload.os_entries + result.stats.offload.offloads
    )
    overhead = (sites * per_guard) / runtime

    def profiled():
        return simulate(
            spec, make_policy("HI", threshold=500), migration, config,
            profiler=SpanProfiler(),
        )

    profiled_runtime = _best_of(profiled)

    print()
    print(f"engine runtime (unprofiled, best of 3): {runtime:.3f}s")
    print(f"guard cost: {per_guard * 1e9:.1f} ns/site x {sites} sites")
    print(f"estimated disabled-profiler overhead: {overhead:.4%}")
    print(f"enabled (SpanProfiler) / disabled ratio: "
          f"{profiled_runtime / runtime:.3f}")

    assert overhead < MAX_DISABLED_PROFILER_OVERHEAD, (
        f"disabled span profiler costs {overhead:.2%} of engine runtime, "
        f"budget is {MAX_DISABLED_PROFILER_OVERHEAD:.0%}"
    )
