"""Bench S1 — Section V.C: sharing one OS core among user cores."""

from conftest import emit

from repro.experiments import run_scalability


def test_scalability(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_scalability(config), rounds=1, iterations=1
    )
    emit(result)
    # Queuing grows with the sharing ratio and per-core benefit shrinks.
    assert result.queue_delay(4) > result.queue_delay(2) > 0
    points = result.points
    assert points[4].normalized_throughput <= points[2].normalized_throughput
    assert points[4].os_core_busy_fraction > points[2].os_core_busy_fraction


def test_smt_os_core(benchmark, config):
    """An SMT OS core absorbs the 4:1 queuing (the paper's 1:N remark)."""
    from repro.experiments import run_scalability as run

    smt = benchmark.pedantic(
        lambda: run(config, core_counts=(4,), os_core_contexts=2),
        rounds=1, iterations=1,
    )
    emit(smt)
    non_smt = run(config, core_counts=(4,), os_core_contexts=1)
    assert smt.queue_delay(4) < non_smt.queue_delay(4)
    assert (
        smt.points[4].normalized_throughput
        >= non_smt.points[4].normalized_throughput - 0.005
    )
