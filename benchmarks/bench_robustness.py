"""Bench A6 — seed robustness of the headline orderings."""

from conftest import emit

from repro.experiments.robustness import run_robustness


def test_robustness(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_robustness(config), rounds=1, iterations=1
    )
    emit(result)
    # The headline gain is present and stable across seeds ...
    assert result.mean_gain > 1.08
    assert result.gain_spread < 0.15
    # ... the coherence dip and the HI >= DI ordering hold for
    # (essentially) every seed.
    assert result.dip_fraction >= 0.8
    assert result.hi_wins_fraction >= 0.8
