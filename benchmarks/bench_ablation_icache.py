"""Bench A5 — instruction-cache modelling ablation.

Table II lists a separate 32 KB L1 I-cache; the headline calibration
models data caches only.  This ablation re-runs the apache threshold
sweep with instruction fetch simulated through per-node L1Is and checks
that the paper's shapes survive: off-loading still pays at low latency,
the optimum stays at a small N, and the OS core's shared kernel text
gives it a healthy I-cache hit rate (the paper's "constructive"
interaction).
"""

import dataclasses


from repro.analysis.tables import render_series
from repro.core.policies import HardwareInstrumentation
from repro.offload.migration import AGGRESSIVE
from repro.sim.simulator import simulate, simulate_baseline
from repro.workloads.presets import get_workload


def test_icache_ablation(benchmark, config):
    icache_config = dataclasses.replace(config, enable_icache=True)
    spec = get_workload("apache")

    def sweep():
        baseline = simulate_baseline(spec, icache_config)
        curve = {}
        runs = {}
        for threshold in (0, 100, 1000, 10000):
            run = simulate(
                spec, HardwareInstrumentation(threshold=threshold),
                AGGRESSIVE, icache_config,
            )
            curve[threshold] = run.throughput / baseline.throughput
            runs[threshold] = run
        return curve, runs

    curve, runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_series(
        "I-cache ablation (apache, aggressive migration, L1I enabled)",
        "curve\\N", sorted(curve), {"normalized IPC": [curve[n] for n in sorted(curve)]},
    ))
    # The paper's shapes survive instruction-fetch modelling:
    assert curve[100] > 1.02                      # off-loading still pays
    assert curve[100] >= curve[10000] - 0.02      # small N still best-ish
    assert curve[0] < curve[100]                  # the N=0 dip remains
    # Kernel text shared at the OS core keeps its L1I healthy.
    os_l1i = runs[100].stats.l1i["os"]
    assert os_l1i.hit_rate > 0.9
