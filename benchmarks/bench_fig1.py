"""Bench F1 — Figure 1: dynamic software instrumentation overhead.

Shape check: server workloads slow down more than compute workloads when
every OS entry point carries the software decision stub.
"""

from conftest import emit

from repro.experiments import run_fig1
from repro.experiments.fig1_instrumentation import COST_SWEEP


def test_fig1(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_fig1(config, sweep_costs=COST_SWEEP), rounds=1, iterations=1
    )
    emit(result)
    servers = [result.overhead_by_workload[n] for n in ("apache", "specjbb2005")]
    computes = [
        v for n, v in result.overhead_by_workload.items()
        if n in ("blackscholes", "hmmer", "mcf", "canneal", "mummer", "fasta_protein")
    ]
    # Instrumentation-only runs can never beat the baseline...
    assert all(v <= 1.01 for v in result.overhead_by_workload.values())
    # ... and servers pay more than the average compute code.
    assert min(servers) < sum(computes) / len(computes)
