"""Bench columnar engine — vectorized replay vs. the batched engine.

The columnar engine (``SimulatorConfig.engine="columnar"``) must be a
pure performance substitution over the *batched* engine: bit-identical
counters, faster replay of hit-dominated streams.  This bench pins
both halves of that contract on a cell built to expose the structural
difference between the two representations:

1. **identity** — the cell is simulated with both engines and every
   ``SimulationStats`` counter is compared;
2. **fast-path speedup** — the cell's reference streams are captured,
   two hierarchies are warmed identically, and the streams are
   replayed at steady state (every reference fast).  The batched
   engine pays one Python dict operation per distinct key per batch
   over a working set that no longer fits the CPU's own caches; the
   columnar engine's :func:`~repro.memory.columnar.probe_commit` pays
   one gather and one scatter through flat dense-key arrays two
   orders of magnitude smaller.  Acceptance: **>= 10x**;
3. **end-to-end speedup** — wall time of the whole cell against a warm
   :class:`~repro.cache.TraceStore` (the sweep deployment both
   engines share: traces replay from the cache, and the columnar
   engine additionally loads its persisted universe/key bundle).
   Amdahl caps this well below the fast-path number — event
   accounting, policy work and the shared miss path are engine-
   independent.  Acceptance: **>= 2x**.

The cell: a compute-heavy workload (2 % privileged instructions, so
user segments run tens of thousands of instructions and replay as a
few large batches), a reference stream dense in memory operations,
and a working set that is L1-resident *by lines* (~2,800 of 4,096
effective lines) but spread uniformly enough that the batched fast
map's per-key probes miss in the host CPU's caches.  BASELINE policy:
no migrations, so written lines stay MODIFIED and the steady state is
pure-hit for both engines.

Measured DEFAULT-profile numbers (see ``BENCH_8.json``): fast path
~36x, end-to-end ~2.9x.  Under ``REPRO_BENCH_PROFILE=test`` the
streams are far shorter, fixed per-batch costs dominate, and only
relaxed floors are asserted — the acceptance numbers are
DEFAULT-profile quantities.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.cache.tracestore import TraceStore
from repro.memory.columnar import build_universe, columnar_backend, translate_keys
from repro.memory.hierarchy import MemoryHierarchy
from repro.offload.engine import OffloadEngine
from repro.os_model.interrupts import InterruptModel
from repro.os_model.traps import WindowTrapModel
from repro.sim.config import CacheConfig, DEFAULT_SCALE, MemorySystemConfig
from repro.sim.simulator import make_policy, simulate
from repro.workloads.base import MemoryBehavior, WorkloadSpec

KB = 1024
MB = 1024 * KB

SEED = 2010
ROUNDS = 3
FAST_ROUNDS = 5

#: (fast-path, end-to-end) speedup floors per regime.  The DEFAULT
#: numbers are the acceptance contract (measured ~36x / ~2.9x); the
#: TEST floors only catch the columnar path becoming a pessimisation.
DEFAULT_FLOORS = (10.0, 2.0)
TEST_FLOORS = (1.2, 0.5)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_8.json"

#: The bench cell's workload: almost entirely user-mode, long segments
#: (the generator derives ~13k-instruction segments from the 2 % OS
#: share of short calls), a memory-dense reference stream, and a
#: working set drawn mostly *uniformly* so per-key dict probes defeat
#: the host CPU's caches while the dense-key arrays stay compact.
#: Working-set sizes are full-scale lines (the profile divides by 32).
SPEC = WorkloadSpec(
    name="bench-columnar-hot",
    description="compute-heavy cell: long user segments, L1-resident "
                "working set, uniform line draw",
    syscall_mix=(("getpid", 1.0), ("gettimeofday", 1.0), ("brk", 0.5)),
    os_fraction=0.02,
    memory=MemoryBehavior(
        memory_ratio=0.60,
        write_fraction=0.30,
        user_ws_lines=80_000,
        os_ws_lines=6_400,
        shared_ws_lines=3_200,
        hot_fraction=0.10,
        hot_probability=0.55,
        user_shared_fraction=0.04,
    ),
    window_traps=WindowTrapModel(rate=0.0),
    interrupts=InterruptModel(standalone_rate=0.0, extension_probability=0.0),
)

#: Caches sized so the whole working set is L1-resident (1 MB / l1
#: scale 4 = 4,096 effective lines vs ~2,800 working-set lines): the
#: steady state is then pure-hit, which is the fast path's regime.
MEMORY = MemorySystemConfig(
    l1=CacheConfig(1024 * KB, 8, hit_latency=0),
    l1i=CacheConfig(64 * KB, 4, hit_latency=0),
    l2=CacheConfig(8 * MB, 16, hit_latency=12),
)


def _cell_config(config, engine):
    return dataclasses.replace(
        config, engine=engine, seed=SEED, memory=MEMORY
    )


def _run_cell(config, engine, store):
    cfg = _cell_config(config, engine)
    policy = make_policy("BASELINE", threshold=100, spec=SPEC, config=cfg)
    start = time.perf_counter()
    result = simulate(SPEC, policy, config=cfg, trace_store=store)
    return time.perf_counter() - start, result


def _capture_streams(config, store):
    """One batched cell run with every ``_replay`` data stream recorded."""
    streams = []
    original = OffloadEngine._replay

    def recording(self, node_id, lines, writes, tlb, keys=None):
        streams.append((node_id, lines.copy(), writes.copy()))
        return original(self, node_id, lines, writes, tlb)

    OffloadEngine._replay = recording
    try:
        _run_cell(config, "batched", store)
    finally:
        OffloadEngine._replay = original
    return streams


def _node_names(streams):
    return [f"node{i}" for i in range(1 + max(n for n, _, _ in streams))]


def _time_pass(replay, rounds=FAST_ROUNDS):
    """Best-of-N steady-state replay time; totals must be stable."""
    best = float("inf")
    totals = set()
    for _ in range(rounds):
        start = time.perf_counter()
        totals.add(replay())
        best = min(best, time.perf_counter() - start)
    assert len(totals) == 1, f"non-deterministic replay: {totals}"
    return best, totals.pop()


def test_columnar_engine_speedups(config, profile, tmp_path):
    floors = DEFAULT_FLOORS if profile is DEFAULT_SCALE else TEST_FLOORS
    min_fastpath, min_cell = floors
    store = TraceStore(str(tmp_path / "store"))

    # -- identity + store warm-up: both engines, every counter ----------
    _, batched_result = _run_cell(config, "batched", store)
    _, columnar_result = _run_cell(config, "columnar", store)
    assert dataclasses.asdict(batched_result.stats) == dataclasses.asdict(
        columnar_result.stats
    ), "columnar engine drifted from the batched reference"

    # -- end-to-end: whole warm-store cells, interleaved best-of-N ------
    batched_cell = columnar_cell = float("inf")
    for _ in range(ROUNDS):
        elapsed, result = _run_cell(config, "batched", store)
        batched_cell = min(batched_cell, elapsed)
        assert dataclasses.asdict(result.stats) == dataclasses.asdict(
            batched_result.stats
        )
        elapsed, result = _run_cell(config, "columnar", store)
        columnar_cell = min(columnar_cell, elapsed)
        assert dataclasses.asdict(result.stats) == dataclasses.asdict(
            batched_result.stats
        )
    cell_speedup = batched_cell / columnar_cell

    # -- fast path: warm hierarchies, steady-state stream replay --------
    streams = _capture_streams(config, store)
    refs = sum(lines.size for _, lines, _ in streams)
    memcfg = _cell_config(config, "batched").effective_memory()
    names = _node_names(streams)

    warm_batched = MemoryHierarchy(memcfg, names)
    for node_id, lines, writes in streams:
        warm_batched.access_batch(node_id, lines, writes)

    universe = build_universe([lines for _, lines, _ in streams])
    keyed = [
        (node_id, lines, writes, translate_keys(universe, lines, writes))
        for node_id, lines, writes in streams
    ]
    warm_columnar = MemoryHierarchy(memcfg, names)
    warm_columnar.enable_columnar(universe)
    for node_id, lines, writes, keys in keyed:
        warm_columnar.access_batch_columnar(node_id, lines, writes, keys=keys)

    def batched_pass():
        total = 0
        access_batch = warm_batched.access_batch
        for node_id, lines, writes in streams:
            total += access_batch(node_id, lines, writes)
        return total

    def columnar_pass():
        total = 0
        access_batch = warm_columnar.access_batch_columnar
        for node_id, lines, writes, keys in keyed:
            total += access_batch(node_id, lines, writes, keys=keys)
        return total

    batched_fast, batched_total = _time_pass(batched_pass)
    columnar_fast, columnar_total = _time_pass(columnar_pass)
    assert batched_total == columnar_total, "steady-state stalls diverged"
    fastpath_speedup = batched_fast / columnar_fast

    print()
    print(
        f"fast path ({refs} refs, {len(streams)} batches, best of "
        f"{FAST_ROUNDS}): batched {batched_fast * 1e3:.2f}ms "
        f"({batched_fast / refs * 1e9:.0f}ns/ref), columnar "
        f"{columnar_fast * 1e3:.2f}ms "
        f"({columnar_fast / refs * 1e9:.1f}ns/ref) "
        f"-> {fastpath_speedup:.1f}x"
    )
    print(
        f"end-to-end (warm store, best of {ROUNDS}): batched "
        f"{batched_cell * 1e3:.1f}ms, columnar {columnar_cell * 1e3:.1f}ms "
        f"-> {cell_speedup:.2f}x"
    )

    BENCH_JSON.write_text(json.dumps({
        "bench": "engine_columnar",
        "profile": profile.name,
        "backend": columnar_backend(),
        "workload": SPEC.name,
        "refs": refs,
        "batches": len(streams),
        "fastpath_batched_s": round(batched_fast, 6),
        "fastpath_columnar_s": round(columnar_fast, 6),
        "fastpath_speedup": round(fastpath_speedup, 3),
        "cell_batched_s": round(batched_cell, 6),
        "cell_columnar_s": round(columnar_cell, 6),
        "cell_speedup": round(cell_speedup, 3),
        "floors": {"fastpath": min_fastpath, "cell": min_cell},
    }, indent=2) + "\n")

    assert fastpath_speedup >= min_fastpath, (
        f"fast-path speedup {fastpath_speedup:.1f}x below the "
        f"{min_fastpath:.1f}x floor"
    )
    assert cell_speedup >= min_cell, (
        f"end-to-end speedup {cell_speedup:.2f}x below the "
        f"{min_cell:.2f}x floor"
    )
