"""Bench RUNNER — parallel batch-runner scaling guard.

The batch runner exists to make grid sweeps scale with cores, so this
bench regresses exactly that: a 16-cell Figure-4-style grid executed
serially and with 2 worker processes must show a >= 1.5x speedup (the
budget leaves headroom for pool start-up, shard submission, and result
marshalling on 2-core CI runners).

Methodology notes:

- the grid is big enough (16 cells) that per-cell simulation time
  dominates the pool's fixed costs at the test profile;
- baselines are pre-computed into a shared on-disk store so neither
  timing includes them (both paths would otherwise pay once per
  process, muddying the comparison);
- the serial and parallel batches are also compared cell-by-cell — the
  speedup must not come at the cost of the bit-identical guarantee;
- on a single-core machine (or a CPU set restricted to one core) the
  bench skips: a process pool cannot beat serial execution without a
  second core to run on.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runner import BatchRunner, JobSpec

#: Required serial/parallel wall-time ratio at 2 workers.
MIN_SPEEDUP = 1.5

#: workload x threshold x latency grid: 16 cells on one workload, so a
#: single shared baseline covers every cell.
GRID = [
    JobSpec("derby", "HI", threshold, latency)
    for threshold in (0, 100, 500, 1000)
    for latency in (0, 100, 1000, 5000)
]


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_two_workers_speed_up_a_sweep(config, tmp_path):
    if _usable_cpus() < 2:
        pytest.skip("parallel speedup needs at least two usable CPUs")

    baseline_dir = str(tmp_path / "baselines")

    def run(jobs: int):
        runner = BatchRunner(config=config, jobs=jobs,
                             baseline_dir=baseline_dir)
        start = time.perf_counter()
        batch = runner.run(GRID)
        elapsed = time.perf_counter() - start
        batch.raise_on_failures()
        return batch, elapsed

    run(1)  # warm the shared baseline store and the allocator
    serial_batch, serial_s = run(1)
    parallel_batch, parallel_s = run(2)
    speedup = serial_s / parallel_s

    print()
    print(f"grid: {len(GRID)} cells, profile {config.profile.name}")
    print(f"serial: {serial_s:.2f}s  2 workers: {parallel_s:.2f}s  "
          f"speedup: {speedup:.2f}x")

    assert [r.metrics for r in serial_batch] == [
        r.metrics for r in parallel_batch
    ], "parallel execution changed cell results"
    assert speedup >= MIN_SPEEDUP, (
        f"2-worker speedup {speedup:.2f}x is below the {MIN_SPEEDUP}x budget"
    )
