"""Bench E1 — energy/EDP accounting (the paper's future-work direction)."""

from conftest import emit

from repro.experiments.energy import run_energy


def test_energy(benchmark, config):
    result = benchmark.pedantic(lambda: run_energy(config), rounds=1, iterations=1)
    emit(result)
    for outcome in result.outcomes.values():
        # Off-loading runs faster, so relative delay is below 1 ...
        assert outcome.delay < 1.05
        # ... sleeping the blocked user core always saves energy over
        # busy-waiting, and the sleep deployment wins on EDP.
        assert outcome.energy_sleep < outcome.energy_busy_wait
        assert outcome.edp_sleep < outcome.edp_busy_wait
