"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures and
prints it in the paper's shape (run ``pytest benchmarks/ --benchmark-only
-s`` to see the tables).  The simulation scale is selectable:

- default: the ``DEFAULT_SCALE`` profile the calibration in
  EXPERIMENTS.md was produced with (a full regeneration takes a few
  minutes);
- ``REPRO_BENCH_PROFILE=test``: the fast profile for smoke runs.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.config import DEFAULT_SCALE, TEST_SCALE, SimulatorConfig


def _selected_profile():
    if os.environ.get("REPRO_BENCH_PROFILE", "").lower() == "test":
        return TEST_SCALE
    return DEFAULT_SCALE


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_root(tmp_path_factory):
    """Point the trace/result cache at a throwaway session directory.

    Benchmarks exercise cached and uncached paths; none of them may
    read from or write into the developer's real ``~/.cache/repro``.
    (Manual env handling because ``monkeypatch`` is function-scoped.)
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("bench-cache-root")
    )
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def profile():
    return _selected_profile()


@pytest.fixture(scope="session")
def config(profile):
    return SimulatorConfig(profile=profile)


def emit(result) -> None:
    """Print a rendered experiment result under a separator."""
    print()
    print(result.render())
