"""Bench F3 — Figure 3: binary prediction hit rate vs. threshold N.

Paper at N=500: apache 94.8%, specjbb 93.4%, derby 96.8%, compute 99.6%.
"""

from conftest import emit

from repro.experiments import run_fig3


def test_fig3(benchmark, profile):
    result = benchmark.pedantic(
        lambda: run_fig3(invocations=12000, profile=profile), rounds=1, iterations=1
    )
    emit(result)
    for group in ("apache", "specjbb2005", "derby", "compute"):
        for threshold in result.thresholds:
            assert result.at(group, threshold) >= 0.90
    # Compute codes predict best, as in the paper.
    assert result.at("compute", 500) >= result.at("apache", 500) - 0.01
