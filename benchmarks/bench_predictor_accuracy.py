"""Bench F2 — predictor accuracy decomposition and storage cost.

Paper: 73.6% exact, +24.8% within ±5%; ~2 KB CAM / ~3.3 KB direct-mapped.
"""

from conftest import emit

from repro.experiments import run_predictor_accuracy


def test_predictor_accuracy(benchmark, profile):
    result = benchmark.pedantic(
        lambda: run_predictor_accuracy(invocations=12000, profile=profile),
        rounds=1, iterations=1,
    )
    emit(result)
    assert 0.60 <= result.average_exact_rate() <= 0.85
    assert 0.15 <= result.average_close_rate() <= 0.35
    assert 1800 <= result.cam_storage_bytes <= 2300          # ~2 KB
    assert 3000 <= result.direct_mapped_storage_bytes <= 3700  # ~3.3 KB
