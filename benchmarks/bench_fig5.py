"""Bench F5 — Figure 5: SI vs. DI vs. HI at both anchored latencies.

Paper: HI up to +18% over baseline, +13% over SI, +23% over DI.
"""

from conftest import emit

from repro.experiments import run_fig5


def test_fig5(benchmark, config):
    result = benchmark.pedantic(lambda: run_fig5(config), rounds=1, iterations=1)
    emit(result)
    assert result.max_hi_gain() > 0.10
    assert result.max_margin("SI") > 0.05
    assert result.max_margin("DI") > 0.0
    # HI never loses to SI, and never loses to DI by more than noise.
    for group, by_migration in result.bars.items():
        for by_policy in by_migration.values():
            assert by_policy["HI"] >= by_policy["SI"] - 0.01
            assert by_policy["HI"] >= by_policy["DI"] - 0.02
