"""Bench miss path — the vectorized miss kernel vs. the scalar walk.

PR 8's columnar engine vectorized the *hit* path and left every miss to
a per-reference Python walk; on cold-start / miss-heavy cells that walk
is the Amdahl residue that dominates end-to-end time.  The vectorized
miss-path kernel (``MemoryHierarchy._vector_miss_resolve``) resolves a
batch's whole miss set with array-level L2 probes, gathered directory
lookups and scatter commits, bailing to the untouched scalar walk for
protocol-heavy batches.  This bench pins that contract on a cell built
to sit in the kernel's commit regime:

1. **identity** — the cell is simulated with the kernel enabled and
   disabled (``REPRO_MISS_KERNEL=0``) and every ``SimulationStats``
   counter must match; the replayed hierarchies must also agree on LRU
   order, directory state and stall totals;
2. **miss-segment speedup** — the cell's reference streams are
   captured once, then replayed from cold through fresh hierarchies
   with the profiler clock injected as ``miss_timer``, so
   ``MemoryHierarchy.miss_ns`` isolates exactly the slow-path section
   the kernel replaces.  Acceptance: **>= 3x**;
3. **end-to-end speedup** — wall time of the whole cell against a warm
   :class:`~repro.cache.TraceStore`, kernel on vs. off.  The baseline
   is the PR-8 columnar engine (the kernel-off configuration is that
   engine, bit for bit), so this is the guarded BENCH_8-baseline
   comparison.  Acceptance: **>= 1.8x**.

The cell: one user core (no peer sharing, so no coherence bails), a
reference stream drawn *uniformly* from a working set of ~100k
effective lines — far more lines than the run can touch twice, so
roughly a third of all references are first-touch cold fills — and
caches sized so nothing is ever evicted (the all-or-nothing kernel
commits a batch only when no selected victim's line is referenced in
the same batch; a cell that never needs a victim stays committed).
Associativity 32 keeps both the per-run set occupancy and the
per-batch fill ranks far from overflow.

Measured DEFAULT-profile numbers are recorded in ``BENCH_10.json``.
Under ``REPRO_BENCH_PROFILE=test`` the streams are much shorter and
only relaxed floors are asserted — the acceptance numbers are
DEFAULT-profile quantities.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

from repro.cache.tracestore import TraceStore
from repro.memory.columnar import build_universe, translate_keys
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.miss_path import miss_path_backend
from repro.offload.engine import OffloadEngine
from repro.os_model.interrupts import InterruptModel
from repro.os_model.traps import WindowTrapModel
from repro.sim.config import CacheConfig, DEFAULT_SCALE, MemorySystemConfig
from repro.sim.simulator import make_policy, simulate
from repro.workloads.base import MemoryBehavior, WorkloadSpec

KB = 1024
MB = 1024 * KB

SEED = 2010
ROUNDS = 3
MISS_ROUNDS = 3

#: (miss-segment, end-to-end) speedup floors per regime.  The DEFAULT
#: numbers are the acceptance contract; the TEST floors only catch the
#: kernel becoming a pessimisation on short streams.
DEFAULT_FLOORS = (3.0, 1.8)
TEST_FLOORS = (1.2, 0.8)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_10.json"

#: The bench cell's workload: long user segments (2 % OS share of
#: short calls), a memory-dense stream drawn uniformly (hot tier
#: effectively disabled) from a working set far larger than the run
#: can revisit, and no sharing of any kind.  Working-set sizes are
#: full-scale lines (the profile divides by 32): 3.2 M user lines are
#: ~100k effective, against ~250k references in a DEFAULT-profile run.
SPEC = WorkloadSpec(
    name="bench-miss-cold",
    description="cold-start cell: uniform draw over a working set the "
                "run cannot touch twice, single core, no sharing",
    syscall_mix=(("getpid", 1.0), ("gettimeofday", 1.0)),
    os_fraction=0.02,
    memory=MemoryBehavior(
        memory_ratio=0.65,
        write_fraction=0.30,
        user_ws_lines=3_200_000,
        os_ws_lines=64_000,
        shared_ws_lines=3_200,
        hot_fraction=0.02,
        hot_probability=0.0,
        user_shared_fraction=0.0,
    ),
    window_traps=WindowTrapModel(rate=0.0),
    interrupts=InterruptModel(standalone_rate=0.0, extension_probability=0.0),
)

#: Caches sized so the cold stream is never evicted: the L1 holds 262k
#: effective lines (64 MB / l1 scale 4 / 32-way) against ~95k distinct
#: touched lines, so every set stays under its associativity for the
#: whole run and the kernel never meets a victim.  The L2 matches the
#: L1's effective capacity (l2 scale is 32), keeping inclusion slack.
MEMORY = MemorySystemConfig(
    l1=CacheConfig(64 * MB, 32, hit_latency=0),
    l1i=CacheConfig(64 * KB, 4, hit_latency=0),
    l2=CacheConfig(512 * MB, 32, hit_latency=12),
)


def _cell_config(config):
    return dataclasses.replace(
        config, engine="columnar", seed=SEED, memory=MEMORY,
        num_user_cores=1,
    )


def _run_cell(config, store, kernel: bool):
    """One columnar cell run with the miss kernel on or off."""
    cfg = _cell_config(config)
    policy = make_policy("BASELINE", threshold=100, spec=SPEC, config=cfg)
    previous = os.environ.get("REPRO_MISS_KERNEL")
    os.environ["REPRO_MISS_KERNEL"] = "1" if kernel else "0"
    try:
        start = time.perf_counter()
        result = simulate(SPEC, policy, config=cfg, trace_store=store)
        elapsed = time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop("REPRO_MISS_KERNEL", None)
        else:
            os.environ["REPRO_MISS_KERNEL"] = previous
    return elapsed, result


def _capture_streams(config, store):
    """One cell run with every ``_replay`` data stream recorded."""
    streams = []
    original = OffloadEngine._replay

    def recording(self, node_id, lines, writes, tlb, keys=None):
        streams.append((node_id, lines.copy(), writes.copy()))
        return original(self, node_id, lines, writes, tlb, keys=keys)

    OffloadEngine._replay = recording
    try:
        _run_cell(config, store, kernel=True)
    finally:
        OffloadEngine._replay = original
    return streams


def _hierarchy_state(hierarchy):
    caches = []
    for node in hierarchy.nodes:
        caches.append(node.l1.lru_snapshot())
        caches.append(node.l2.lru_snapshot())
    stats = [
        (s.hits, s.misses)
        for group in (hierarchy.l1_stats, hierarchy.l2_stats)
        for s in group.values()
    ]
    return caches, stats, hierarchy.directory.snapshot()


def test_miss_path_kernel_speedups(config, profile, tmp_path):
    floors = DEFAULT_FLOORS if profile is DEFAULT_SCALE else TEST_FLOORS
    min_miss, min_cell = floors
    store = TraceStore(str(tmp_path / "store"))

    # -- identity + store warm-up: kernel on vs off, every counter ------
    _, on_result = _run_cell(config, store, kernel=True)
    _, off_result = _run_cell(config, store, kernel=False)
    assert dataclasses.asdict(on_result.stats) == dataclasses.asdict(
        off_result.stats
    ), "miss kernel drifted from the scalar walk"

    # -- end-to-end: whole warm-store cells, interleaved best-of-N ------
    on_cell = off_cell = float("inf")
    for _ in range(ROUNDS):
        elapsed, result = _run_cell(config, store, kernel=False)
        off_cell = min(off_cell, elapsed)
        assert dataclasses.asdict(result.stats) == dataclasses.asdict(
            on_result.stats
        )
        elapsed, result = _run_cell(config, store, kernel=True)
        on_cell = min(on_cell, elapsed)
        assert dataclasses.asdict(result.stats) == dataclasses.asdict(
            on_result.stats
        )
    cell_speedup = off_cell / on_cell

    # -- miss segment: cold replay of the captured streams --------------
    # Fresh hierarchies each round (the miss path only exists while the
    # caches are filling); the wall clock is injected as ``miss_timer``
    # so ``miss_ns`` isolates exactly the slow-path section.
    streams = _capture_streams(config, store)
    refs = sum(lines.size for _, lines, _ in streams)
    memcfg = _cell_config(config).effective_memory()
    names = [f"node{i}" for i in range(1 + max(n for n, _, _ in streams))]
    universe = build_universe([lines for _, lines, _ in streams])
    keyed = [
        (node_id, lines, writes, translate_keys(universe, lines, writes))
        for node_id, lines, writes in streams
    ]

    def cold_replay(kernel: bool):
        hierarchy = MemoryHierarchy(memcfg, names)
        hierarchy._miss_kernel_on = kernel
        hierarchy.miss_timer = time.perf_counter_ns
        hierarchy.enable_columnar(universe)
        total = 0
        access_batch = hierarchy.access_batch_columnar
        for node_id, lines, writes, keys in keyed:
            total += access_batch(node_id, lines, writes, keys=keys)
        return hierarchy, total

    on_miss = off_miss = float("inf")
    on_state = off_state = None
    commits = bails = 0
    for _ in range(MISS_ROUNDS):
        hierarchy, total = cold_replay(kernel=False)
        off_miss = min(off_miss, hierarchy.miss_ns)
        state = (_hierarchy_state(hierarchy), total)
        assert off_state is None or off_state == state
        off_state = state

        hierarchy, total = cold_replay(kernel=True)
        on_miss = min(on_miss, hierarchy.miss_ns)
        commits = hierarchy.miss_kernel_commits
        bails = hierarchy.miss_kernel_bails
        state = (_hierarchy_state(hierarchy), total)
        assert on_state is None or on_state == state
        on_state = state
    assert on_state == off_state, "kernel-on replay diverged from kernel-off"
    assert commits > 0, "cell never entered the kernel's commit regime"
    miss_speedup = off_miss / on_miss

    print()
    print(
        f"miss segment ({refs} refs, {len(streams)} batches, "
        f"{commits} commits / {bails} bails, best of {MISS_ROUNDS}): "
        f"scalar walk {off_miss / 1e6:.2f}ms, kernel {on_miss / 1e6:.2f}ms "
        f"-> {miss_speedup:.1f}x"
    )
    print(
        f"end-to-end (warm store, best of {ROUNDS}): kernel-off "
        f"{off_cell * 1e3:.1f}ms, kernel-on {on_cell * 1e3:.1f}ms "
        f"-> {cell_speedup:.2f}x"
    )

    BENCH_JSON.write_text(json.dumps({
        "bench": "miss_path",
        "profile": profile.name,
        "backend": miss_path_backend(),
        "workload": SPEC.name,
        "refs": refs,
        "batches": len(streams),
        "kernel_commits": commits,
        "kernel_bails": bails,
        "miss_scalar_s": round(off_miss / 1e9, 6),
        "miss_kernel_s": round(on_miss / 1e9, 6),
        "miss_speedup": round(miss_speedup, 3),
        "cell_off_s": round(off_cell, 6),
        "cell_on_s": round(on_cell, 6),
        "cell_speedup": round(cell_speedup, 3),
        "floors": {"miss_segment": min_miss, "cell": min_cell},
    }, indent=2) + "\n")

    assert miss_speedup >= min_miss, (
        f"miss-segment speedup {miss_speedup:.1f}x below the "
        f"{min_miss:.1f}x floor"
    )
    assert cell_speedup >= min_cell, (
        f"end-to-end speedup {cell_speedup:.2f}x below the "
        f"{min_cell:.2f}x floor"
    )
