"""Bench A2 — the Section III.B dynamic-N controller vs. best static N."""

from conftest import emit

from repro.experiments import run_dynamic_threshold


def test_dynamic_threshold(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_dynamic_threshold(config), rounds=1, iterations=1
    )
    emit(result)
    for outcome in result.outcomes.values():
        # The controller keeps most of the best-static performance and
        # always beats doing nothing.
        assert outcome.retention > 0.85
        assert outcome.dynamic_normalized > 1.0
