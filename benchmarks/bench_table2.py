"""Bench T2 — regenerate Table II (simulator parameters)."""

from conftest import emit

from repro.experiments import run_table2


def test_table2(benchmark):
    result = benchmark(run_table2)
    emit(result)
    assert result.parameters["Coherence Protocol"] == "Directory Based MESI"
    assert "350" in result.parameters["Main Memory"]
