"""Bench F4 — Figure 4: normalized IPC vs. threshold and latency.

Shape checks: latency dominance, the N=0 coherence dip, and the optimum
at short thresholds for the server workloads.
"""

from conftest import emit

from repro.experiments import run_fig4


def test_fig4(benchmark, config):
    result = benchmark.pedantic(lambda: run_fig4(config), rounds=1, iterations=1)
    emit(result)
    for group in ("apache", "specjbb2005", "derby", "compute"):
        assert result.latency_dominance_holds(group)
        assert result.n0_dip(group) > 0.0
    # Off-loading pays at low latency for every server workload...
    for group in ("apache", "specjbb2005", "derby"):
        assert result.value(group, 0, 100) > 1.05
        assert result.best_threshold(group, 0) <= 500
    # ... and SPECjbb gains essentially nothing at the conservative
    # latency (the paper's "may never be beneficial (see SPECjbb)"; our
    # model allows a small residual gain from the heavy-call tail).
    assert max(result.panels["specjbb2005"][5000].values()) <= 1.06
    assert result.value("specjbb2005", 5000, 100) <= 1.0
