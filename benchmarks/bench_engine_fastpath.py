"""Bench engine fast path — batched vs. scalar memory engine guard.

The batched engine (``SimulatorConfig.engine="batched"``) must be a pure
performance substitution: bit-identical counters, faster replay.  This
bench pins both halves of that contract on one fig. 4 grid cell
(apache, HI, N=100, aggressive migration):

1. **identity** — the cell is simulated with both engines and every
   ``SimulationStats`` counter is compared;
2. **fast-path speedup** — the cell's memory reference streams are
   captured, two hierarchies are warmed identically, and the streams
   are filtered to the references that hit the L1 fast map (the
   skew-hot resident working set).  This is the regime the batched
   engine's whole-batch optimistic tier targets: the acceptance
   criterion is **>= 3x** over the scalar path;
3. **replay speedup** — the *unfiltered* captured streams replayed
   against fresh hierarchies, misses and all.  Amdahl caps this well
   below the fast-path number (the miss/coherence work is shared by
   both engines); the guard is a regression floor, not the headline;
4. **end-to-end speedup** — wall time of the whole cell, where replay
   is only part of the engine loop.

``docs/performance.md`` walks through why the three ratios differ.
Under ``REPRO_BENCH_PROFILE=test`` the streams are far shorter, so the
per-batch fixed costs dominate and only relaxed floors are asserted —
the measured acceptance numbers are DEFAULT-profile quantities.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.memory.hierarchy import MemoryHierarchy
from repro.offload.engine import OffloadEngine
from repro.offload.migration import MigrationModel
from repro.sim.config import DEFAULT_SCALE
from repro.sim.simulator import make_policy, simulate
from repro.workloads.presets import get_workload

WORKLOAD = "apache"
THRESHOLD = 100
ROUNDS = 3

#: (fast-path, full-replay, end-to-end) speedup floors per regime.  The
#: DEFAULT numbers are the contract (measured ~3.6x / ~1.9x / ~1.3x);
#: the TEST floors only catch the batched path becoming a pessimisation.
DEFAULT_FLOORS = (3.0, 1.5, 1.05)
TEST_FLOORS = (2.0, 1.2, 0.85)


def _cell_inputs(config, engine):
    cfg = dataclasses.replace(config, engine=engine)
    spec = get_workload(WORKLOAD)
    migration = MigrationModel("bench-100", THRESHOLD)
    policy = make_policy(
        "HI", threshold=THRESHOLD, migration=migration, spec=spec, config=cfg
    )
    return spec, policy, migration, cfg


def _run_cell(config, engine):
    spec, policy, migration, cfg = _cell_inputs(config, engine)
    start = time.perf_counter()
    result = simulate(spec, policy, migration, cfg)
    return time.perf_counter() - start, result


def _best_cell(config, engine):
    _run_cell(config, engine)  # warm allocator / caches
    best, result = min(
        (_run_cell(config, engine) for _ in range(ROUNDS)),
        key=lambda pair: pair[0],
    )
    return best, result


def _capture_streams(config):
    """One scalar cell run with every ``_replay`` data stream recorded."""
    streams = []
    original = OffloadEngine._replay

    def recording(self, node_id, lines, writes, tlb):
        streams.append((node_id, lines.copy(), writes.copy()))
        return original(self, node_id, lines, writes, tlb)

    OffloadEngine._replay = recording
    try:
        spec, policy, migration, cfg = _cell_inputs(config, "scalar")
        simulate(spec, policy, migration, cfg)
    finally:
        OffloadEngine._replay = original
    return streams


def _fresh_hierarchy(config, streams):
    nodes = 1 + max(node_id for node_id, _, _ in streams)
    return MemoryHierarchy(config.memory, [f"node{i}" for i in range(nodes)])


def _replay_scalar(hierarchy, streams):
    total = 0
    access = hierarchy.access
    for node_id, lines, writes in streams:
        for line, is_write in zip(lines.tolist(), writes.tolist()):
            total += access(node_id, line, is_write)
    return total


def _replay_batched(hierarchy, streams):
    total = 0
    access_batch = hierarchy.access_batch
    for node_id, lines, writes in streams:
        total += access_batch(node_id, lines, writes)
    return total


def _fastpath_streams(hierarchy, streams):
    """Filter captured streams to references resident in the warm L1.

    Keeps each stream's real skew (the same line recurring within a
    batch), which is what the optimistic whole-batch tier exploits —
    a uniform synthetic stream would understate the dedup leverage.
    """
    kept = []
    for node_id, lines, writes in streams:
        fast = hierarchy.nodes[node_id].l1.fast_map
        keys = (lines << 1) | writes
        mask = np.fromiter(
            map(fast.__contains__, keys.tolist()), bool, count=keys.size
        )
        if mask.any():
            kept.append((node_id, lines[mask], writes[mask]))
    return kept


def _time_replay(replay, hierarchy_factory, streams):
    """Best-of-N replay time; returns (seconds, stall total)."""
    best = float("inf")
    totals = set()
    for _ in range(ROUNDS):
        hierarchy = hierarchy_factory()
        start = time.perf_counter()
        totals.add(replay(hierarchy, streams))
        best = min(best, time.perf_counter() - start)
    assert len(totals) == 1, f"non-deterministic replay: {totals}"
    return best, totals.pop(), hierarchy


def _assert_same_memory_state(left, right):
    for a, b in zip(left.nodes, right.nodes):
        assert list(a.l1.resident_lines()) == list(b.l1.resident_lines())
        assert list(a.l2.resident_lines()) == list(b.l2.resident_lines())
    for group in ("l1_stats", "l2_stats"):
        for a, b in zip(
            getattr(left, group).values(), getattr(right, group).values()
        ):
            assert (a.hits, a.misses) == (b.hits, b.misses)


def test_batched_engine_fastpath_speedup(config, profile):
    floors = DEFAULT_FLOORS if profile is DEFAULT_SCALE else TEST_FLOORS
    min_fastpath, min_replay, min_cell = floors

    # -- identity: the whole cell, both engines, every counter ----------
    scalar_cell, scalar_result = _best_cell(config, "scalar")
    batched_cell, batched_result = _best_cell(config, "batched")
    assert dataclasses.asdict(scalar_result.stats) == dataclasses.asdict(
        batched_result.stats
    ), "batched engine drifted from the scalar reference"
    cell_speedup = scalar_cell / batched_cell

    # -- full-stream replay: fresh hierarchies, misses included --------
    streams = _capture_streams(config)
    refs = sum(lines.size for _, lines, _ in streams)
    factory = lambda: _fresh_hierarchy(config, streams)  # noqa: E731
    scalar_replay, scalar_total, _ = _time_replay(
        _replay_scalar, factory, streams
    )
    batched_replay, batched_total, _ = _time_replay(
        _replay_batched, factory, streams
    )
    assert scalar_total == batched_total
    replay_speedup = scalar_replay / batched_replay

    # -- fast path: warm hierarchies, resident-hit streams --------------
    warm_scalar = factory()
    warm_batched = factory()
    _replay_batched(warm_scalar, streams)
    _replay_batched(warm_batched, streams)
    fast_streams = _fastpath_streams(warm_scalar, streams)
    fast_refs = sum(lines.size for _, lines, _ in fast_streams)
    scalar_fast, scalar_stalls, _ = _time_replay(
        _replay_scalar, lambda: warm_scalar, fast_streams
    )
    batched_fast, batched_stalls, _ = _time_replay(
        _replay_batched, lambda: warm_batched, fast_streams
    )
    assert scalar_stalls == batched_stalls == 0, "fast path must be stall-free"
    _assert_same_memory_state(warm_scalar, warm_batched)
    fastpath_speedup = scalar_fast / batched_fast

    print()
    print(f"cell ({WORKLOAD}/HI/N={THRESHOLD}, best of {ROUNDS}): "
          f"scalar {scalar_cell * 1e3:.1f}ms, batched {batched_cell * 1e3:.1f}ms "
          f"-> {cell_speedup:.2f}x")
    print(f"replay ({refs} refs, cold): "
          f"scalar {scalar_replay / refs * 1e9:.1f}ns/ref, "
          f"batched {batched_replay / refs * 1e9:.1f}ns/ref "
          f"-> {replay_speedup:.2f}x")
    print(f"fast path ({fast_refs} resident refs, warm): "
          f"scalar {scalar_fast / fast_refs * 1e9:.1f}ns/ref, "
          f"batched {batched_fast / fast_refs * 1e9:.1f}ns/ref "
          f"-> {fastpath_speedup:.2f}x")

    assert fastpath_speedup >= min_fastpath, (
        f"fast-path speedup {fastpath_speedup:.2f}x below the "
        f"{min_fastpath:.1f}x floor"
    )
    assert replay_speedup >= min_replay, (
        f"full-stream replay speedup {replay_speedup:.2f}x below the "
        f"{min_replay:.1f}x floor"
    )
    assert cell_speedup >= min_cell, (
        f"end-to-end cell speedup {cell_speedup:.2f}x below the "
        f"{min_cell:.1f}x floor"
    )
