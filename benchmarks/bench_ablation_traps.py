"""Bench A4 — §IV: window traps as off-load candidates or not."""

from conftest import emit

from repro.experiments.ablation_window_traps import run_window_trap_ablation


def test_window_trap_ablation(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_window_trap_ablation(config), rounds=1, iterations=1
    )
    emit(result)
    # With traps as candidates the N=0 coherence dip is pronounced;
    # excluding them (x86-like) nearly removes it.
    assert result.n0_dip(include=True) > 0.0
    assert result.n0_dip(include=True) > result.n0_dip(include=False)
