"""Bench T1 — regenerate Table I (syscall counts per OS)."""

from conftest import emit

from repro.experiments import run_table1


def test_table1(benchmark):
    result = benchmark(run_table1)
    emit(result)
    assert len(result.rows) == 14
    assert result.modern_minimum >= 200
