"""Bench A3 — predictor organisation ablation (CAM size, DM, knobs)."""

from conftest import emit

from repro.experiments import run_predictor_ablation


def test_predictor_ablation(benchmark, profile):
    result = benchmark.pedantic(
        lambda: run_predictor_ablation(profile=profile), rounds=1, iterations=1
    )
    emit(result)
    cam200 = result.score_for("CAM-200")
    cam3200 = result.score_for("CAM-3200")
    cam25 = result.score_for("CAM-25")
    dm = result.score_for("DM-1500 (tag-less)")
    # 200 entries is close to a 16x larger table (the paper's
    # "close to optimal (infinite history)" claim) ...
    assert cam3200.binary_accuracy_500 - cam200.binary_accuracy_500 < 0.02
    # ... while a much smaller table visibly degrades.
    assert cam25.binary_accuracy_500 <= cam200.binary_accuracy_500
    # The tag-less direct-mapped organisation performs similarly.
    assert abs(dm.binary_accuracy_500 - cam200.binary_accuracy_500) < 0.03
