"""Bench A1 — two half-size L2s vs. the 1 MB single-core baseline.

Documented deviation: the paper's crossover ("two 512 KB L2 caches can
out-perform the single-core 1 MB baseline if the off-loading latency is
under 1,000 cycles") does NOT reproduce under the scaled-cache profile —
the scaled working sets sit near L2 capacity, so halving the L2s costs
far more here than it did at full size.  The parts of the claim that are
scale-independent are asserted: extra capacity is a strong contributor
(full ≥ halved everywhere), and both configurations decay with latency.
See EXPERIMENTS.md §A1.
"""

from conftest import emit

from repro.experiments import run_cache_halved


def test_cache_halved(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_cache_halved(config), rounds=1, iterations=1
    )
    emit(result)
    latencies = sorted(result.by_latency)
    for latency in latencies:
        full, halved = result.by_latency[latency]
        # Extra cache capacity is a strong contributor (Section V.B).
        assert halved <= full + 0.01
    # Both configurations decay as migration gets slower.
    full_first, halved_first = result.by_latency[latencies[0]]
    full_last, halved_last = result.by_latency[latencies[-1]]
    assert full_last < full_first
    assert halved_last < halved_first
