"""Bench A7 — two threads per user core (the paper's server mapping).

Section II maps two threads per core on the server workloads so stalls
don't idle the core.  With off-loading, the sibling thread hides
migration and OS-core time: at the conservative 5,000-cycle latency the
disastrous single-thread N=100 point recovers to ~baseline, and at the
aggressive latency off-loaded work executes truly in parallel with the
sibling, raising throughput well beyond the single-thread gain.
"""

import dataclasses


from repro.analysis.tables import render_table
from repro.core.policies import HardwareInstrumentation
from repro.offload.migration import AGGRESSIVE, CONSERVATIVE
from repro.sim.simulator import simulate, simulate_baseline
from repro.workloads.presets import get_workload


def test_smt_user_threads(benchmark, config):
    smt_config = dataclasses.replace(config, threads_per_user_core=2)
    spec = get_workload("apache")

    def sweep():
        rows = {}
        base_1t = simulate_baseline(spec, config)
        base_2t = simulate_baseline(spec, smt_config)
        for migration in (AGGRESSIVE, CONSERVATIVE):
            one_thread = simulate(
                spec, HardwareInstrumentation(threshold=100), migration, config
            )
            two_threads = simulate(
                spec, HardwareInstrumentation(threshold=100), migration,
                smt_config,
            )
            rows[migration.name] = (
                one_thread.throughput / base_1t.throughput,
                two_threads.throughput / base_2t.throughput,
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["migration", "1 thread/core", "2 threads/core"],
        [(name, f"{a:.3f}", f"{b:.3f}") for name, (a, b) in rows.items()],
        title="SMT user cores (apache, HI @ N=100, normalized per config)",
    ))
    # Latency hiding: the sibling thread absorbs off-load waits, so the
    # 2-thread configuration gains more at BOTH latencies ...
    assert rows["aggressive"][1] > rows["aggressive"][0]
    # ... and rescues the conservative point that ruins a 1T core.
    assert rows["conservative"][0] < 0.8
    assert rows["conservative"][1] > 0.9
