"""Bench LINT — interprocedural dataflow runtime budget.

The whole-program pass (``repro lint --dataflow``) is meant to run in
CI on every push and locally before every commit, so it has a hard
wall-clock budget: a full analysis of ``src/repro`` — call graph,
taint fixpoint, escape analysis, and worker-purity closure — must
finish in under 10 seconds.  The budget is what keeps the dataflow
engine honest as the tree grows; if a new abstraction blows it, the
fix is summary precision or caching, not dropping the pass from CI.

Two measurements:

1. **fast pass** — plain ``run_lint`` (v1 AST rules only), which must
   stay interactive-speed since it is the inner-loop default;
2. **dataflow pass** — ``run_lint(dataflow=True)``, the budgeted run.
   A fresh ``Project`` per round so the cached ``FlowContext`` from a
   previous round cannot hide the real cost.

Both passes must also report zero violations on the real tree — the
same invariant ``tests/test_lint_dataflow.py`` pins, re-checked here
because a finding would make the timing unrepresentative (early
exits, shorter render paths).
"""

import time
from pathlib import Path

import repro
from repro.lint import run_lint

SRC_ROOT = Path(repro.__file__).resolve().parent

#: Hard wall-clock ceiling for a full --dataflow pass over src/repro.
MAX_DATAFLOW_SECONDS = 10.0

#: The fast v1 pass must stay well inside interactive latency.
MAX_FAST_SECONDS = 5.0


def _best_of(fn, rounds: int = 3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fast_pass_under_budget():
    elapsed, violations = _best_of(
        lambda: run_lint([SRC_ROOT], root=SRC_ROOT)
    )
    print()
    print(f"fast pass over src/repro (best of 3): {elapsed:.3f}s")
    assert violations == [], "\n".join(v.render() for v in violations)
    assert elapsed < MAX_FAST_SECONDS, (
        f"fast lint pass took {elapsed:.2f}s, budget is "
        f"{MAX_FAST_SECONDS:.0f}s"
    )


def test_dataflow_pass_under_budget():
    elapsed, violations = _best_of(
        lambda: run_lint([SRC_ROOT], root=SRC_ROOT, dataflow=True)
    )
    print()
    print(f"dataflow pass over src/repro (best of 3): {elapsed:.3f}s")
    assert violations == [], "\n".join(v.render() for v in violations)
    assert elapsed < MAX_DATAFLOW_SECONDS, (
        f"interprocedural lint pass took {elapsed:.2f}s, budget is "
        f"{MAX_DATAFLOW_SECONDS:.0f}s"
    )
