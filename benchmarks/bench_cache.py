"""Bench trace/result cache — generate once, replay everywhere guard.

The content-addressed cache (:mod:`repro.cache`) promises a pure
performance substitution: bit-identical numbers, less repeated work.
This bench pins both halves of that contract on a Figure-4-shaped
sub-grid (two servers x the full threshold grid x two latencies, 24
cells over two shared baselines):

1. **identity** — the grid is executed plain, cold-cached and
   warm-cached, and every cell's metrics dict must be equal across all
   three;
2. **cold-grid speedup** — a cold cache already pays off *within* one
   grid, because all policy/N cells of a workload replay the one
   materialized trace instead of regenerating it.  The DEFAULT-profile
   floor is **>= 1.5x** over the uncached run;
3. **warm re-run speedup** — re-running the same grid against the
   populated cache short-circuits at the result layer (level 2) and
   never touches the simulator.  The DEFAULT-profile floor is
   **>= 5x**.

``docs/caching.md`` explains the two levels and the key derivation.
Under ``REPRO_BENCH_PROFILE=test`` the traces are short enough that
fixed per-cell costs dominate, so only relaxed floors are asserted —
the acceptance numbers are DEFAULT-profile quantities.

The measured numbers land in ``BENCH_5.json`` at the repo root for the
CI step that tracks them.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.experiments.common import THRESHOLD_GRID, run_job_grid, sweep_specs
from repro.runner import worker
from repro.sim.config import DEFAULT_SCALE

WORKLOADS = ("apache", "specjbb2005")
LATENCIES = (0, 100)
ROUNDS = 2

#: (cold-grid, warm-re-run) speedup floors per regime.  The DEFAULT
#: numbers are the contract (measured ~1.6x / ~20x); the TEST floors
#: only catch the cache becoming a pessimisation.
DEFAULT_FLOORS = (1.5, 5.0)
TEST_FLOORS = (1.05, 3.0)

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_5.json"


def _forget_process_state() -> None:
    """Drop the worker's in-process memos so every timed run starts cold.

    Without this the baseline memo and the store LRU would leak warmth
    from one timed run into the next and flatter the uncached run."""
    worker._BASELINE_MEMO.clear()
    worker._STORES.clear()


def _timed_grid(specs, config, cache_dir=None):
    _forget_process_state()
    start = time.perf_counter()
    batch = run_job_grid(specs, config, cache_dir=cache_dir)
    elapsed = time.perf_counter() - start
    batch.raise_on_failures()
    return elapsed, {result.job_id: result.metrics for result in batch}


def test_cache_cold_and_warm_speedups(config, profile, tmp_path):
    floors = DEFAULT_FLOORS if profile is DEFAULT_SCALE else TEST_FLOORS
    min_cold, min_warm = floors
    specs = sweep_specs(WORKLOADS, THRESHOLD_GRID, LATENCIES)

    # -- timed runs: plain, cold cache (fresh dir per round), warm ------
    plain_s, warm_s = float("inf"), float("inf")
    cold_s = float("inf")
    reference = None
    cache_dir = None
    for round_index in range(ROUNDS):
        elapsed, metrics = _timed_grid(specs, config)
        plain_s = min(plain_s, elapsed)
        if reference is None:
            reference = metrics
        assert metrics == reference, "uncached grid is non-deterministic"
        cache_dir = str(tmp_path / f"cache-{round_index}")
        elapsed, metrics = _timed_grid(specs, config, cache_dir=cache_dir)
        cold_s = min(cold_s, elapsed)
        assert metrics == reference, "cold cached grid drifted from plain"
    for _ in range(ROUNDS):
        elapsed, metrics = _timed_grid(specs, config, cache_dir=cache_dir)
        warm_s = min(warm_s, elapsed)
        assert metrics == reference, "warm cached grid drifted from plain"

    cold_speedup = plain_s / cold_s
    warm_speedup = plain_s / warm_s

    print()
    print(f"grid ({len(specs)} cells, best of {ROUNDS}): "
          f"plain {plain_s:.2f}s, cold cache {cold_s:.2f}s "
          f"-> {cold_speedup:.2f}x")
    print(f"warm re-run: {warm_s * 1e3:.0f}ms -> {warm_speedup:.1f}x")

    BENCH_JSON.write_text(json.dumps({
        "bench": "cache",
        "profile": profile.name,
        "cells": len(specs),
        "plain_s": round(plain_s, 4),
        "cold_cached_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "cold_grid_speedup": round(cold_speedup, 3),
        "warm_rerun_speedup": round(warm_speedup, 3),
        "floors": {"cold_grid": min_cold, "warm_rerun": min_warm},
    }, indent=2) + "\n")

    assert cold_speedup >= min_cold, (
        f"cold-grid speedup {cold_speedup:.2f}x below the "
        f"{min_cold:.2f}x floor"
    )
    assert warm_speedup >= min_warm, (
        f"warm re-run speedup {warm_speedup:.1f}x below the "
        f"{min_warm:.1f}x floor"
    )
